package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestEventSchemaGolden pins the JSONL event schema. If this test fails,
// either restore compatibility or bump SchemaVersion AND regenerate the
// golden file with `go test ./internal/telemetry -run Golden -update`.
func TestEventSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	in := New(3)
	ts := int64(1_700_000_000_000_000_000)
	in.SetClock(func() int64 { ts += 1_000_000; return ts })
	in.SetSink(sink)

	in.Emit(KindExchange, map[string]any{"case": "1", "lc": 2, "depth": 0})
	in.Emit(KindQuery, map[string]any{"key": "010110", "found": true, "hops": 3, "backtracks": 1})
	in.Emit(KindRound, map[string]any{"meetings": int64(500), "exchanges": int64(1234), "avg_path_len": 3.25, "target": 5.94})
	in.Emit(KindBuild, map[string]any{"n": 500, "meetings": int64(9000), "exchanges": int64(12210), "avg_path_len": 5.95, "converged": true, "seconds": 0.25})
	in.EmitRPC("query", 2, 1234)
	in.Emit(KindDrop, map[string]any{"dropped": int64(17)})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "events.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event schema drifted from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// Every line must carry the schema version — consumers key on it.
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %s: %v", line, err)
		}
		if e.V != SchemaVersion {
			t.Errorf("line %s: v = %d, want %d", line, e.V, SchemaVersion)
		}
		if e.Node != 3 || e.TS == 0 || e.Kind == "" {
			t.Errorf("line %s: incomplete envelope", line)
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	sink.Emit(Event{V: SchemaVersion, Kind: KindRound})
	if err := sink.Flush(); err == nil {
		t.Fatal("expected sticky error")
	}
	if sink.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
	sink.Emit(Event{V: SchemaVersion, Kind: KindRound}) // must not panic
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errTest }

func TestMemorySink(t *testing.T) {
	in := New(-1)
	s := &MemorySink{}
	in.SetSink(s)
	if !in.EventsOn() {
		t.Fatal("EventsOn false with sink attached")
	}
	in.Emit(KindRound, map[string]any{"meetings": 1})
	in.SetSink(nil)
	if in.EventsOn() {
		t.Fatal("EventsOn true after detach")
	}
	in.Emit(KindRound, nil) // dropped
	if s.Len() != 1 {
		t.Fatalf("events = %d, want 1", s.Len())
	}
	e := s.Events()[0]
	if e.Kind != KindRound || e.V != SchemaVersion || e.Node != -1 || e.TS == 0 {
		t.Errorf("bad event %+v", e)
	}
}
