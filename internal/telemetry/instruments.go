package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Exchange case codes observed by Instruments.ExchangeCase. Codes 1–4 are
// the paper's Fig. 3 cases; ExCaseReplica is the buddy-forming meeting of
// replicas at maximal depth; ExCaseNone is a meeting where no case fired
// (split gate closed, recursion bound hit, or maxl reached).
const (
	ExCaseNone    = 0
	ExCase1       = 1
	ExCase2       = 2
	ExCase3       = 3
	ExCase4       = 4
	ExCaseReplica = 5
)

// ExchangeCaseName names a case code for labels and events.
func ExchangeCaseName(c int) string {
	switch c {
	case ExCase1:
		return "1"
	case ExCase2:
		return "2"
	case ExCase3:
		return "3"
	case ExCase4:
		return "4"
	case ExCaseReplica:
		return "replica"
	default:
		return "none"
	}
}

// MaxLevels bounds the per-level liveness counters; levels beyond it are
// clamped into the last bucket (paths deeper than 32 bits do not occur at
// the paper's scales).
const MaxLevels = 32

// Instruments is the typed metric bundle for one pgrid process — a
// simulator run, a networked node, or an embedding application. All
// methods are nil-safe no-ops, so callers thread a possibly-nil
// *Instruments through hot paths unconditionally.
//
// The event sink is attached with SetSink and may be swapped at runtime;
// emitting is disabled (and free apart from one atomic load) while no sink
// is attached. Callers building expensive attribute maps should guard with
// EventsOn.
// StatStartEpoch and StatUptime are the incarnation gauges every node
// publishes: the process start time (unix nanoseconds) and the
// monotonic time since it. A changed start epoch is the unambiguous
// counter-reset signal — unlike the "current < previous" heuristic it
// also catches restarts whose counters overshoot the old values.
const (
	StatStartEpoch  = "pgrid_node_start_epoch_ns"
	StatUptime      = "pgrid_node_uptime_ns"
	StatServedTotal = "pgrid_rpc_served_total"
)

type Instruments struct {
	reg   *Registry
	node  int
	clock func() int64
	sink  atomic.Pointer[Sink]
	start time.Time

	exchanges     *Counter
	exchangeCases [ExCaseReplica + 1]*Counter

	queries         *Counter
	queriesFailed   *Counter
	queryHops       *Histogram
	queryBacktracks *Counter

	updateReplicas *Counter
	updateMessages *Counter

	refsLive    *Counter
	refsDead    *Counter
	refsByLevel [MaxLevels + 1]levelPair

	rpcTotal     *Counter
	rpcErrors    *Counter
	rpcDropped   *Counter
	rpcMalformed *Counter
	rpcLatency   *Histogram
	served       *Counter

	resCalls            *Counter
	resRetries          *Counter
	resBudgetExhausted  *Counter
	resBreakerOpens     *Counter
	resFastFails        *Counter
	resHedges           *Counter
	resHedgeWins        *Counter
	resBreakersOpen     *Gauge
	resBreakersHalfOpen *Gauge
	resBudgetTokens     *Gauge

	healthPathLen  *Gauge
	healthEntries  *Gauge
	healthBuddies  *Gauge
	healthLiveness *Gauge
	healthMinLevel *Gauge
	healthRounds   *Gauge

	poolOpen        *Gauge
	poolInFlight    *Gauge
	poolQueueDepth  *Gauge
	poolDials       *Counter
	poolReuses      *Counter
	poolEvictions   *Counter
	poolIdleCloses  *Counter
	poolConnLost    *Counter
	poolAcquireWait *QHist

	eventsDropped *Counter
	rpcSlow       *Counter
	servedErrors  *Counter

	repairRounds   *Counter
	repairMessages *Counter
	repairUnhealed *Gauge

	labeledMu sync.RWMutex
	labeled   map[string]*Counter
	labeledQ  map[string]*QHist
	exTailQ   float64 // >0: capture exemplars on latency QHists (guarded by labeledMu)
}

type levelPair struct {
	live *Counter
	dead *Counter
}

// New returns instruments for the given logical node id (-1 for a driver
// that is not a peer) backed by a fresh Registry.
func New(node int) *Instruments {
	t := &Instruments{
		reg:      NewRegistry(),
		node:     node,
		clock:    func() int64 { return time.Now().UnixNano() },
		start:    time.Now(),
		labeled:  make(map[string]*Counter),
		labeledQ: make(map[string]*QHist),
	}
	r := t.reg
	r.GaugeFunc(StatStartEpoch, "process start time in unix nanoseconds (changes exactly when counters reset)",
		func() int64 { return t.start.UnixNano() })
	r.GaugeFunc(StatUptime, "monotonic nanoseconds since process start",
		func() int64 { return int64(time.Since(t.start)) })
	t.exchanges = r.Counter("pgrid_exchange_total", "exchanges executed, including recursive ones (the paper's e)")
	for c := range t.exchangeCases {
		t.exchangeCases[c] = r.Counter(Label("pgrid_exchange_case_total", "case", ExchangeCaseName(c)),
			"exchanges by Fig. 3 case taken")
	}
	t.queries = r.Counter("pgrid_query_total", "searches completed")
	t.queriesFailed = r.Counter("pgrid_query_failed_total", "searches that found no responsible peer")
	t.queryHops = r.Histogram("pgrid_query_hops", "successful peer contacts per search", HopBounds)
	t.queryBacktracks = r.Counter("pgrid_query_backtracks_total", "failed subtrees abandoned during searches")
	t.updateReplicas = r.Counter("pgrid_update_replicas_total", "replicas reached by update propagations")
	t.updateMessages = r.Counter("pgrid_update_messages_total", "messages spent by update propagations")
	t.refsLive = r.Counter("pgrid_refs_probe_live_total", "reference probes that found a live, valid peer")
	t.refsDead = r.Counter("pgrid_refs_probe_dead_total", "reference probes that found a dead or invalid peer")
	t.rpcTotal = r.Counter("pgrid_rpc_client_total", "outbound RPCs issued")
	t.rpcErrors = r.Counter("pgrid_rpc_client_errors_total", "outbound RPCs that failed")
	t.rpcDropped = r.Counter("pgrid_rpc_dropped_total", "RPCs dropped by failure injection")
	t.rpcMalformed = r.Counter("pgrid_rpc_malformed_total", "responses whose payload did not match the request kind")
	t.resCalls = r.Counter("pgrid_resilience_calls_total", "logical calls entering the resilient transport")
	t.resRetries = r.Counter("pgrid_resilience_retries_total", "retry attempts issued after transient failures")
	t.resBudgetExhausted = r.Counter("pgrid_resilience_retry_budget_exhausted_total", "retries refused because the retry budget was empty")
	t.resBreakerOpens = r.Counter("pgrid_resilience_breaker_opens_total", "circuit-breaker transitions into the open state")
	t.resFastFails = r.Counter("pgrid_resilience_breaker_fastfail_total", "calls refused locally by an open breaker")
	t.resHedges = r.Counter("pgrid_resilience_hedges_total", "majority-read attempts that launched a hedge request")
	t.resHedgeWins = r.Counter("pgrid_resilience_hedge_wins_total", "hedged reads where the hedge answered first")
	t.resBreakersOpen = r.Gauge("pgrid_resilience_breakers_open", "peer circuit breakers currently open")
	t.resBreakersHalfOpen = r.Gauge("pgrid_resilience_breakers_half_open", "peer circuit breakers currently half-open")
	t.resBudgetTokens = r.Gauge("pgrid_resilience_retry_budget_tokens_milli", "retry budget balance in millitokens")
	t.rpcLatency = r.Histogram("pgrid_rpc_latency_ns", "outbound RPC round-trip latency in nanoseconds", LatencyBounds)
	t.served = r.Counter(StatServedTotal, "inbound RPCs handled")
	t.healthPathLen = r.Gauge("pgrid_health_path_len", "length of this peer's responsibility path")
	t.healthEntries = r.Gauge("pgrid_health_entries", "index entries in this peer's store")
	t.healthBuddies = r.Gauge("pgrid_health_buddies", "known replicas of this peer's path")
	t.healthLiveness = r.Gauge("pgrid_health_liveness_permille", "overall reference liveness ratio in permille (-1 before any probe)")
	t.healthMinLevel = r.Gauge("pgrid_health_level_liveness_min_permille", "worst per-level reference liveness ratio in permille (-1 before any probe)")
	t.healthRounds = r.Gauge("pgrid_health_probe_rounds", "completed background probe rounds")
	t.poolOpen = r.Gauge("pgrid_pool_conns_open", "pooled connections currently open")
	t.poolInFlight = r.Gauge("pgrid_pool_requests_in_flight", "requests currently multiplexed over pooled connections")
	t.poolDials = r.Counter("pgrid_pool_dials_total", "connections dialed by the pool")
	t.poolReuses = r.Counter("pgrid_pool_reuses_total", "calls served over an already-open pooled connection")
	t.poolEvictions = r.Counter("pgrid_pool_evictions_total", "pooled connections evicted (breaker open or explicit)")
	t.poolIdleCloses = r.Counter("pgrid_pool_idle_closes_total", "pooled connections reaped after sitting idle")
	t.poolConnLost = r.Counter("pgrid_pool_conn_lost_total", "pooled connections that died with requests in flight")
	t.poolQueueDepth = r.Gauge("pgrid_pool_queue_depth", "requests currently waiting for or multiplexed on pooled connections, by queue position")
	t.poolAcquireWait = r.Quantile("pgrid_pool_acquire_wait_ns", "time from requesting a pooled connection to holding one, in nanoseconds")
	t.eventsDropped = r.Counter("pgrid_events_dropped_total", "telemetry events discarded because a pipeline ring was full")
	t.rpcSlow = r.Counter("pgrid_rpc_slow_total", "outbound RPCs slower than the slow-op threshold")
	t.servedErrors = r.Counter("pgrid_rpc_served_errors_total", "inbound RPCs answered with an error reply")
	t.repairRounds = r.Counter("pgrid_repair_rounds_total", "self-healing repair rounds completed")
	t.repairMessages = r.Counter("pgrid_repair_messages_total", "wire messages spent by repair rounds")
	t.repairUnhealed = r.Gauge("pgrid_repair_unhealed", "faults the last repair round detected but could not heal (0 = structurally healthy)")
	RegisterRuntimeMetrics(r)
	return t
}

// Registry returns the backing registry (nil on a nil receiver).
func (t *Instruments) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Node returns the logical node id the instruments were created for.
func (t *Instruments) Node() int {
	if t == nil {
		return -1
	}
	return t.node
}

// SetClock overrides the event timestamp source (tests). Call before any
// emitter runs; the field is not synchronized.
func (t *Instruments) SetClock(clock func() int64) {
	if t == nil {
		return
	}
	t.clock = clock
}

// SetStart overrides the recorded process start time (tests that need a
// deterministic incarnation epoch). Call before any snapshot is taken;
// the field is not synchronized.
func (t *Instruments) SetStart(at time.Time) {
	if t == nil {
		return
	}
	t.start = at
}

// Start returns the recorded process start time (zero on nil).
func (t *Instruments) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// EnableExemplars switches on tail-bucket exemplar capture for every
// per-kind latency histogram, existing and future: buckets at/above the
// tailQ quantile carry the most recent trace id observed there, linking
// a bad p999 to a concrete trace in the flight recorder. Nil-safe.
func (t *Instruments) EnableExemplars(tailQ float64) {
	if t == nil {
		return
	}
	t.labeledMu.Lock()
	defer t.labeledMu.Unlock()
	t.exTailQ = tailQ
	if tailQ > 0 {
		for _, q := range t.labeledQ {
			q.EnableExemplars(tailQ)
		}
	}
}

// SetSink attaches (or, with nil, detaches) the event sink. Attaching a
// *Pipeline also wires its drop count into pgrid_events_dropped_total.
func (t *Instruments) SetSink(s Sink) {
	if t == nil {
		return
	}
	if s == nil {
		t.sink.Store(nil)
		return
	}
	if p, ok := s.(*Pipeline); ok {
		p.SetDropCounter(t.eventsDropped)
	}
	t.sink.Store(&s)
}

// EventsOn reports whether a sink is attached. Emitters building
// non-trivial attribute maps should guard with it.
func (t *Instruments) EventsOn() bool {
	return t != nil && t.sink.Load() != nil
}

// Emit sends an event to the attached sink, stamping schema version,
// timestamp, and node id. No-op without a sink.
func (t *Instruments) Emit(kind string, attrs map[string]any) {
	if t == nil {
		return
	}
	sp := t.sink.Load()
	if sp == nil {
		return
	}
	(*sp).Emit(Event{V: SchemaVersion, TS: t.clock(), Node: t.node, Kind: kind, Attrs: attrs})
}

// EmitExchange emits one KindExchange event. When the sink is a Pipeline
// the record is enqueued as flat fields — no attribute map allocation on
// the meeting hot path; other sinks get the equivalent Event.
func (t *Instruments) EmitExchange(caseName string, lc, depth, a1, a2 int) {
	if t == nil {
		return
	}
	sp := t.sink.Load()
	if sp == nil {
		return
	}
	if p, ok := (*sp).(*Pipeline); ok {
		p.emitExchange(t.clock(), t.node, caseName, lc, depth, a1, a2)
		return
	}
	(*sp).Emit(Event{V: SchemaVersion, TS: t.clock(), Node: t.node, Kind: KindExchange,
		Attrs: map[string]any{"case": caseName, "lc": lc, "depth": depth, "a1": a1, "a2": a2}})
}

// EmitQuery emits one KindQuery event (allocation-free via a Pipeline).
func (t *Instruments) EmitQuery(key string, found bool, hops, backtracks int) {
	if t == nil {
		return
	}
	sp := t.sink.Load()
	if sp == nil {
		return
	}
	if p, ok := (*sp).(*Pipeline); ok {
		p.emitQuery(t.clock(), t.node, key, found, hops, backtracks)
		return
	}
	(*sp).Emit(Event{V: SchemaVersion, TS: t.clock(), Node: t.node, Kind: KindQuery,
		Attrs: map[string]any{"key": key, "found": found, "hops": hops, "backtracks": backtracks}})
}

// EmitRPC emits one KindRPC event for an outbound RPC of the given wire
// kind to peer, taking us microseconds (allocation-free via a Pipeline).
func (t *Instruments) EmitRPC(kind string, peer int, us int64) {
	if t == nil {
		return
	}
	sp := t.sink.Load()
	if sp == nil {
		return
	}
	if p, ok := (*sp).(*Pipeline); ok {
		p.emitRPC(t.clock(), t.node, kind, peer, us)
		return
	}
	(*sp).Emit(Event{V: SchemaVersion, TS: t.clock(), Node: t.node, Kind: KindRPC,
		Attrs: map[string]any{"kind": kind, "peer": peer, "us": us}})
}

// ExchangeCase records one executed exchange and the Fig. 3 case taken
// (an ExCase* code; out-of-range codes count as ExCaseNone).
func (t *Instruments) ExchangeCase(c int) {
	if t == nil {
		return
	}
	if c < 0 || c >= len(t.exchangeCases) {
		c = ExCaseNone
	}
	t.exchanges.Inc()
	t.exchangeCases[c].Inc()
}

// ObserveQuery records one completed search: whether it found a
// responsible peer, the successful contacts spent (hops), and the failed
// subtrees abandoned (backtracks).
func (t *Instruments) ObserveQuery(found bool, hops, backtracks int) {
	if t == nil {
		return
	}
	t.queries.Inc()
	if !found {
		t.queriesFailed.Inc()
	}
	t.queryHops.Observe(int64(hops))
	t.queryBacktracks.Add(int64(backtracks))
}

// ObserveUpdate records one update propagation under the named strategy
// ("breadth-first", "repeated-dfs", …): rounds by strategy, plus replica
// coverage and message cost.
func (t *Instruments) ObserveUpdate(strategy string, replicas, messages int) {
	if t == nil {
		return
	}
	t.labeledCounter("pgrid_update_rounds_total", "strategy", strategy,
		"update propagations by replica-location strategy").Inc()
	t.updateReplicas.Add(int64(replicas))
	t.updateMessages.Add(int64(messages))
}

// RefLiveness records one reference probe at the given 1-based level.
func (t *Instruments) RefLiveness(level int, live bool) {
	if t == nil {
		return
	}
	if level < 0 {
		level = 0
	}
	if level > MaxLevels {
		level = MaxLevels
	}
	p := t.levelCounters(level)
	if live {
		t.refsLive.Inc()
		p.live.Inc()
	} else {
		t.refsDead.Inc()
		p.dead.Inc()
	}
}

// ObserveHealth updates the structural health gauges from one self-digest
// refresh: path length, store size, known replica count, liveness ratios
// (in permille; pass -1 while no probe data exists), and completed probe
// rounds. Gauges hold the most recent refresh, so /metrics shows current
// structure rather than an accumulation.
func (t *Instruments) ObserveHealth(pathLen, entries, buddies int, livenessPermille, minLevelPermille, rounds int64) {
	if t == nil {
		return
	}
	t.healthPathLen.Set(int64(pathLen))
	t.healthEntries.Set(int64(entries))
	t.healthBuddies.Set(int64(buddies))
	t.healthLiveness.Set(livenessPermille)
	t.healthMinLevel.Set(minLevelPermille)
	t.healthRounds.Set(rounds)
}

// ClientRPC records one outbound RPC of the given kind, its round-trip
// latency, and whether it failed.
func (t *Instruments) ClientRPC(kind string, d time.Duration, err error) {
	if t == nil {
		return
	}
	t.rpcTotal.Inc()
	t.labeledCounter("pgrid_rpc_client_kind_total", "kind", kind, "outbound RPCs by message kind").Inc()
	t.rpcLatency.Observe(int64(d))
	t.latencyQ("pgrid_rpc_kind_latency_ns", kind, "outbound RPC round-trip latency by message kind, in nanoseconds").Observe(int64(d))
	if err != nil {
		t.rpcErrors.Inc()
		t.labeledCounter("pgrid_rpc_client_kind_errors_total", "kind", kind, "failed outbound RPCs by message kind").Inc()
	}
}

// ServedRPC records one inbound RPC of the given kind.
func (t *Instruments) ServedRPC(kind string) {
	if t == nil {
		return
	}
	t.served.Inc()
	t.labeledCounter("pgrid_rpc_served_kind_total", "kind", kind, "inbound RPCs by message kind").Inc()
}

// ServedRPCDone records the handling duration and outcome of one inbound
// RPC (paired with an earlier ServedRPC).
func (t *Instruments) ServedRPCDone(kind string, d time.Duration, isErr bool) {
	t.ServedRPCTraced(kind, d, isErr, 0)
}

// ServedRPCTraced is ServedRPCDone for a request carrying a trace
// context: when exemplar capture is enabled the landing latency bucket
// remembers traceID, so tail quantiles point at retrievable traces.
func (t *Instruments) ServedRPCTraced(kind string, d time.Duration, isErr bool, traceID uint64) {
	if t == nil {
		return
	}
	t.latencyQ("pgrid_rpc_served_latency_ns", kind, "inbound RPC handling latency by message kind, in nanoseconds").ObserveTraced(int64(d), traceID)
	if isErr {
		t.servedErrors.Inc()
		t.labeledCounter("pgrid_rpc_served_kind_errors_total", "kind", kind, "inbound RPCs answered with an error reply, by message kind").Inc()
	}
}

// SlowRPC records one outbound RPC that exceeded the slow-op threshold.
func (t *Instruments) SlowRPC(kind string) {
	if t == nil {
		return
	}
	t.rpcSlow.Inc()
	t.labeledCounter("pgrid_rpc_slow_kind_total", "kind", kind, "slow outbound RPCs by message kind").Inc()
}

// PeerError records one failed outbound RPC against the peer it targeted
// and a coarse error class ("timeout", "refused", "closed", "other").
func (t *Instruments) PeerError(peer int, class string) {
	if t == nil {
		return
	}
	full := "pgrid_rpc_peer_errors_total{class=" + strconv.Quote(class) + ",peer=" + strconv.Quote(strconv.Itoa(peer)) + "}"
	t.cachedCounter(full, "failed outbound RPCs by peer and error class").Inc()
}

// MalformedResponse records one response whose payload did not match the
// request kind — a peer answered, but with garbage. Counted separately
// from offline peers so misbehavior is distinguishable from churn.
func (t *Instruments) MalformedResponse(kind string) {
	if t == nil {
		return
	}
	t.rpcMalformed.Inc()
	t.labeledCounter("pgrid_rpc_malformed_kind_total", "kind", kind, "malformed responses by request kind").Inc()
}

// RepairFault records one structural fault detected by the repair
// protocol, labeled by fault class (wrong-side-ref, dead-ref, …).
func (t *Instruments) RepairFault(class string) {
	if t == nil {
		return
	}
	t.labeledCounter("pgrid_repair_fault_total", "class", class, "structural faults detected by the repair protocol, by class").Inc()
}

// RepairHeal records one healing action taken by the repair protocol,
// labeled by action (evict-ref, sync-pull, adopt-path, …).
func (t *Instruments) RepairHeal(action string) {
	if t == nil {
		return
	}
	t.labeledCounter("pgrid_repair_heal_total", "action", action, "healing actions taken by the repair protocol, by action").Inc()
}

// RepairRound records one completed repair round: the wire messages it
// spent and how many detected faults it left unhealed (the gauge an
// operator alerts on — nonzero for many rounds means the peer is stuck).
func (t *Instruments) RepairRound(messages, unhealed int) {
	if t == nil {
		return
	}
	t.repairRounds.Inc()
	t.repairMessages.Add(int64(messages))
	t.repairUnhealed.Set(int64(unhealed))
}

// ResilienceCall records one logical call entering the resilient
// transport (retries excluded — those are counted by ResilienceRetry).
func (t *Instruments) ResilienceCall() {
	if t == nil {
		return
	}
	t.resCalls.Inc()
}

// ResilienceRetry records one retry attempt of the given message kind.
func (t *Instruments) ResilienceRetry(kind string) {
	if t == nil {
		return
	}
	t.resRetries.Inc()
	t.labeledCounter("pgrid_resilience_retries_kind_total", "kind", kind, "retries by message kind").Inc()
}

// ResilienceBudgetExhausted records one retry refused for lack of budget.
func (t *Instruments) ResilienceBudgetExhausted() {
	if t == nil {
		return
	}
	t.resBudgetExhausted.Inc()
}

// ResilienceBreakerOpened records one breaker opening.
func (t *Instruments) ResilienceBreakerOpened() {
	if t == nil {
		return
	}
	t.resBreakerOpens.Inc()
}

// ResilienceFastFail records one call refused locally by an open breaker.
func (t *Instruments) ResilienceFastFail() {
	if t == nil {
		return
	}
	t.resFastFails.Inc()
}

// ResilienceOutcome records the final outcome class of one resilient call
// ("ok", "ok-retried", "transient", "terminal", "corrupt", "fastfail",
// "budget-exhausted").
func (t *Instruments) ResilienceOutcome(class string) {
	if t == nil {
		return
	}
	t.labeledCounter("pgrid_resilience_outcome_total", "class", class, "resilient calls by final outcome").Inc()
}

// ResilienceBreakerGauges publishes the current number of open and
// half-open breakers.
func (t *Instruments) ResilienceBreakerGauges(open, halfOpen int64) {
	if t == nil {
		return
	}
	t.resBreakersOpen.Set(open)
	t.resBreakersHalfOpen.Set(halfOpen)
}

// ResilienceBudgetTokens publishes the retry budget balance (millitokens).
func (t *Instruments) ResilienceBudgetTokens(milli int64) {
	if t == nil {
		return
	}
	t.resBudgetTokens.Set(milli)
}

// PoolGauges publishes the pool's current open-connection, in-flight, and
// acquire-queue depths.
func (t *Instruments) PoolGauges(open, inFlight, queued int64) {
	if t == nil {
		return
	}
	t.poolOpen.Set(open)
	t.poolInFlight.Set(inFlight)
	t.poolQueueDepth.Set(queued)
}

// PoolAcquireWait records how long one call waited to hold a pooled
// connection (dial time included on cold paths).
func (t *Instruments) PoolAcquireWait(d time.Duration) {
	if t == nil {
		return
	}
	t.poolAcquireWait.Observe(int64(d))
}

// PoolDial records one connection dialed by the pool, labeled by the codec
// the connection ended up speaking ("binary", "gob").
func (t *Instruments) PoolDial(codec string) {
	if t == nil {
		return
	}
	t.poolDials.Inc()
	t.labeledCounter("pgrid_pool_dials_codec_total", "codec", codec, "pool dials by negotiated codec").Inc()
}

// PoolReuse records one call served over an already-open pooled connection.
// The reuse ratio — reuses / (reuses + dials) — is how warm the pool runs.
func (t *Instruments) PoolReuse() {
	if t == nil {
		return
	}
	t.poolReuses.Inc()
}

// PoolEviction records pooled connections dropped by an eviction (breaker
// opening, explicit flush).
func (t *Instruments) PoolEviction(n int) {
	if t == nil {
		return
	}
	t.poolEvictions.Add(int64(n))
}

// PoolIdleClose records one pooled connection reaped after sitting idle.
func (t *Instruments) PoolIdleClose() {
	if t == nil {
		return
	}
	t.poolIdleCloses.Inc()
}

// PoolConnLost records one pooled connection that died with requests still
// in flight (those requests fail Transient and may retry elsewhere).
func (t *Instruments) PoolConnLost() {
	if t == nil {
		return
	}
	t.poolConnLost.Inc()
}

// Hedge records one launched hedge request and whether it won the race.
func (t *Instruments) Hedge(won bool) {
	if t == nil {
		return
	}
	t.resHedges.Inc()
	if won {
		t.resHedgeWins.Inc()
	}
}

// RPCDropped records one RPC dropped by failure injection
// (node.FlakyTransport).
func (t *Instruments) RPCDropped(kind string) {
	if t == nil {
		return
	}
	t.rpcDropped.Inc()
	t.labeledCounter("pgrid_rpc_dropped_kind_total", "kind", kind, "dropped RPCs by message kind").Inc()
}

// Totals returns the headline counters for status lines: exchanges
// executed, queries completed, and outbound RPC errors (including drops).
func (t *Instruments) Totals() (exchanges, queries, rpcErrors int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.exchanges.Value(), t.queries.Value(), t.rpcErrors.Value() + t.rpcDropped.Value()
}

// levelCounters lazily registers the per-level liveness pair.
func (t *Instruments) levelCounters(level int) levelPair {
	t.labeledMu.RLock()
	p := t.refsByLevel[level]
	t.labeledMu.RUnlock()
	if p.live != nil {
		return p
	}
	t.labeledMu.Lock()
	defer t.labeledMu.Unlock()
	if t.refsByLevel[level].live == nil {
		lvl := itoa(level)
		t.refsByLevel[level] = levelPair{
			live: t.reg.Counter(Label("pgrid_refs_level_live_total", "level", lvl),
				"live reference probes by level"),
			dead: t.reg.Counter(Label("pgrid_refs_level_dead_total", "level", lvl),
				"dead reference probes by level"),
		}
	}
	return t.refsByLevel[level]
}

// labeledCounter caches dynamically-labeled counters (RPC kinds, update
// strategies) so the hot path is a read-locked map hit.
func (t *Instruments) labeledCounter(name, key, value, help string) *Counter {
	return t.cachedCounter(Label(name, key, value), help)
}

// cachedCounter is labeledCounter for a pre-rendered full name (used when
// the name carries more than one label).
func (t *Instruments) cachedCounter(full, help string) *Counter {
	t.labeledMu.RLock()
	c := t.labeled[full]
	t.labeledMu.RUnlock()
	if c != nil {
		return c
	}
	t.labeledMu.Lock()
	defer t.labeledMu.Unlock()
	if c = t.labeled[full]; c == nil {
		c = t.reg.Counter(full, help)
		t.labeled[full] = c
	}
	return c
}

// latencyQ caches per-kind quantile histograms the same way.
func (t *Instruments) latencyQ(name, kind, help string) *QHist {
	full := Label(name, "kind", kind)
	t.labeledMu.RLock()
	q := t.labeledQ[full]
	t.labeledMu.RUnlock()
	if q != nil {
		return q
	}
	t.labeledMu.Lock()
	defer t.labeledMu.Unlock()
	if q = t.labeledQ[full]; q == nil {
		q = t.reg.Quantile(full, help)
		if t.exTailQ > 0 {
			q.EnableExemplars(t.exTailQ)
		}
		t.labeledQ[full] = q
	}
	return q
}

// LatencySummary is one row of LatencyReport: the SLO quantiles of one
// latency histogram, in nanoseconds.
type LatencySummary struct {
	Scope string `json:"scope"` // "client", "served", or "pool"
	Kind  string `json:"kind"`  // wire kind name, or the pool stage
	Count int64  `json:"count"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
}

// LatencyReport snapshots every quantile histogram with at least one
// observation: per-kind client and served RPC latency plus the pool
// acquire wait, sorted by scope then kind. Nil-safe.
func (t *Instruments) LatencyReport() []LatencySummary {
	if t == nil {
		return nil
	}
	var out []LatencySummary
	row := func(scope, kind string, q *QHist) {
		n := q.Count()
		if n == 0 {
			return
		}
		qs := q.Quantiles(QuantilePoints...)
		out = append(out, LatencySummary{Scope: scope, Kind: kind, Count: n,
			P50: qs[0], P95: qs[1], P99: qs[2], P999: qs[3]})
	}
	t.labeledMu.RLock()
	for full, q := range t.labeledQ {
		scope := "client"
		if strings.HasPrefix(full, "pgrid_rpc_served_latency_ns") {
			scope = "served"
		}
		row(scope, labelValue(full, "kind"), q)
	}
	t.labeledMu.RUnlock()
	row("pool", "acquire_wait", t.poolAcquireWait)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// labelValue extracts one label's value from a rendered instrument name,
// or "" when absent.
func labelValue(full, key string) string {
	marker := key + `="`
	i := strings.Index(full, marker)
	if i < 0 {
		return ""
	}
	rest := full[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// itoa avoids strconv for tiny non-negative ints on the probe path.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}
