package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"
)

// appendEvent appends the JSON encoding of e to buf, byte-for-byte
// identical to encoding/json.Marshal (the golden test in event_test.go
// pins this). A hand-rolled encoder because events are the telemetry hot
// path: Marshal allocates a new []byte per event plus reflection state,
// while this appends into a buffer the sink reuses across events.
func appendEvent(buf []byte, e Event) ([]byte, error) {
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, int64(e.V), 10)
	buf = append(buf, `,"ts":`...)
	buf = strconv.AppendInt(buf, e.TS, 10)
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(e.Node), 10)
	buf = append(buf, `,"kind":`...)
	buf = appendString(buf, e.Kind)
	if len(e.Attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var err error
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendString(buf, k)
			buf = append(buf, ':')
			buf, err = appendValue(buf, e.Attrs[k])
			if err != nil {
				return buf, err
			}
		}
		buf = append(buf, '}')
	}
	return append(buf, '}'), nil
}

// appendValue appends one attr value. The common telemetry types (string,
// bool, ints, float64) are encoded inline; anything else falls back to
// json.Marshal so exotic attrs still round-trip.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, `null`...), nil
	case string:
		return appendString(buf, x), nil
	case bool:
		if x {
			return append(buf, `true`...), nil
		}
		return append(buf, `false`...), nil
	case int:
		return strconv.AppendInt(buf, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(buf, x, 10), nil
	case int32:
		return strconv.AppendInt(buf, int64(x), 10), nil
	case uint64:
		return strconv.AppendUint(buf, x, 10), nil
	case float64:
		return appendFloat(buf, x)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return buf, err
		}
		return append(buf, b...), nil
	}
}

// appendFloat matches encoding/json's float encoding: shortest 'f' form,
// switching to 'e' notation outside [1e-6, 1e21) with the two-digit
// exponent shortened ("2e+07" → "2e+07" stays, "2e-09" → "2e-09" →
// "2e-9").
func appendFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return buf, &json.UnsupportedValueError{Str: strconv.FormatFloat(f, 'g', -1, 64)}
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// Shorten exponents like e-09 to e-9, as encoding/json does.
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, nil
}

const hexDigits = "0123456789abcdef"

// appendString appends a JSON string literal with encoding/json's default
// escaping: quotes, backslashes, control characters, the HTML-sensitive
// set (<, >, &), U+2028/U+2029, and U+FFFD for invalid UTF-8.
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				// Control chars and <, >, & escape as \u00XX.
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// jsonSafe[b] reports whether ASCII byte b can appear unescaped inside a
// JSON string under encoding/json's default (HTML-escaping) rules.
var jsonSafe = func() [utf8.RuneSelf]bool {
	var t [utf8.RuneSelf]bool
	for b := 0; b < utf8.RuneSelf; b++ {
		t[b] = b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return t
}()
