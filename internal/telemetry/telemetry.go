// Package telemetry is pgrid's zero-dependency observability layer: typed
// atomic counters and histograms collected in a Registry that renders the
// Prometheus text exposition format, plus a versioned structured event
// stream (JSONL) shared by the simulator and the networked node, so both
// are analyzed with one toolchain.
//
// Every instrument is nil-safe: calling any method on a nil *Counter,
// *Histogram, or *Instruments is a no-op. Disabled telemetry therefore
// costs one predictable branch per observation — the construction hot path
// (millions of exchanges per second) runs with a nil *Instruments and pays
// nothing else. Enabled instruments are lock-free (sync/atomic) and safe
// for concurrent use.
package telemetry

import (
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a settable atomic level (a current value, not a count): path
// length, store size, a liveness ratio in permille. Like every instrument
// it is nil-safe and lock-free.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores the gauge's current value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-bucket histogram over int64 observations (hop
// counts, exchange depths, latencies in nanoseconds). Bounds are inclusive
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. All mutation is atomic.
type Histogram struct {
	name    string
	help    string
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Default bucket bounds for pgrid's instruments.
var (
	// LatencyBounds covers RPC round trips from 50µs to 10s, in
	// nanoseconds.
	LatencyBounds = []int64{
		50_000, 100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000,
		25_000_000, 50_000_000, 100_000_000, 250_000_000,
		500_000_000, 1_000_000_000, 2_500_000_000, 10_000_000_000,
	}
	// HopBounds covers query hop counts and recursion depths (O(log N)
	// quantities).
	HopBounds = []int64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64}
)
