package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Error("nil counter not inert")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 || h.Name() != "" {
		t.Error("nil histogram not inert")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Histogram("y", "", HopBounds) != nil || r.Snapshot() != nil {
		t.Error("nil registry not inert")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Error(err)
	}
	var in *Instruments
	in.ExchangeCase(ExCase1)
	in.ObserveQuery(true, 3, 1)
	in.ObserveUpdate("breadth-first", 4, 20)
	in.RefLiveness(2, true)
	in.ClientRPC("query", time.Millisecond, nil)
	in.ServedRPC("query")
	in.RPCDropped("query")
	in.Emit(KindRound, nil)
	in.SetSink(&MemorySink{})
	in.SetClock(nil)
	if in.EventsOn() {
		t.Error("nil instruments report events on")
	}
	if e, q, w := in.Totals(); e != 0 || q != 0 || w != 0 {
		t.Error("nil instruments report totals")
	}
	if in.Registry() != nil || in.Node() != -1 {
		t.Error("nil instruments expose state")
	}
}

func TestCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pgrid_test_total", "help")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if again := r.Counter("pgrid_test_total", "help"); again != c {
		t.Error("re-registration returned a different counter")
	}

	h := r.Histogram("pgrid_test_hops", "help", []int64{1, 4})
	for _, v := range []int64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 112 {
		t.Errorf("count=%d sum=%d, want 6/112", h.Count(), h.Sum())
	}
	// Buckets: ≤1 → {0,1}, ≤4 → {2,4}, +Inf → {5,100}; cumulative 2,4,6.
	snap := r.Snapshot()
	want := map[string]int64{
		"pgrid_test_total":                  3,
		`pgrid_test_hops_bucket{le="1"}`:    2,
		`pgrid_test_hops_bucket{le="4"}`:    4,
		`pgrid_test_hops_bucket{le="+Inf"}`: 6,
		"pgrid_test_hops_sum":               112,
		"pgrid_test_hops_count":             6,
	}
	got := map[string]int64{}
	for _, s := range snap {
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("pgrid_case_total", "case", "1"), "cases").Add(5)
	r.Counter(Label("pgrid_case_total", "case", "2"), "cases").Add(7)
	r.Histogram("pgrid_lat_ns", "latency", []int64{10}).Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pgrid_case_total counter",
		`pgrid_case_total{case="1"} 5`,
		`pgrid_case_total{case="2"} 7`,
		"# TYPE pgrid_lat_ns histogram",
		`pgrid_lat_ns_bucket{le="10"} 1`,
		`pgrid_lat_ns_bucket{le="+Inf"} 1`,
		"pgrid_lat_ns_sum 3",
		"pgrid_lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One family header even with two labeled members.
	if strings.Count(out, "# TYPE pgrid_case_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestInstrumentsCountersFlow(t *testing.T) {
	in := New(7)
	in.ExchangeCase(ExCase1)
	in.ExchangeCase(ExCase4)
	in.ExchangeCase(ExCaseReplica)
	in.ExchangeCase(-99) // clamps to none
	in.ObserveQuery(true, 3, 1)
	in.ObserveQuery(false, 0, 2)
	in.ObserveUpdate("breadth-first", 4, 20)
	in.RefLiveness(2, true)
	in.RefLiveness(2, false)
	in.ClientRPC("query", 2*time.Millisecond, nil)
	in.ClientRPC("exchange", time.Millisecond, errTest)
	in.ServedRPC("info")
	in.RPCDropped("apply")

	ex, q, werr := in.Totals()
	if ex != 4 || q != 2 || werr != 2 {
		t.Errorf("Totals = %d,%d,%d, want 4,2,2", ex, q, werr)
	}
	got := map[string]int64{}
	for _, s := range in.Registry().Snapshot() {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]int64{
		"pgrid_exchange_total":                                4,
		`pgrid_exchange_case_total{case="1"}`:                 1,
		`pgrid_exchange_case_total{case="4"}`:                 1,
		`pgrid_exchange_case_total{case="replica"}`:           1,
		`pgrid_exchange_case_total{case="none"}`:              1,
		"pgrid_query_total":                                   2,
		"pgrid_query_failed_total":                            1,
		"pgrid_query_backtracks_total":                        3,
		`pgrid_update_rounds_total{strategy="breadth-first"}`: 1,
		"pgrid_update_replicas_total":                         4,
		"pgrid_update_messages_total":                         20,
		`pgrid_refs_level_live_total{level="2"}`:              1,
		`pgrid_refs_level_dead_total{level="2"}`:              1,
		"pgrid_rpc_client_total":                              2,
		"pgrid_rpc_client_errors_total":                       1,
		"pgrid_rpc_dropped_total":                             1,
		`pgrid_rpc_served_kind_total{kind="info"}`:            1,
	} {
		if got[name] != want {
			t.Errorf("%s = %d, want %d", name, got[name], want)
		}
	}
	if got["pgrid_rpc_latency_ns_count"] != 2 {
		t.Errorf("latency count = %d, want 2", got["pgrid_rpc_latency_ns_count"])
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

func TestInstrumentsConcurrency(t *testing.T) {
	in := New(0)
	in.SetSink(&MemorySink{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.ExchangeCase(i % 6)
				in.ObserveQuery(i%2 == 0, i%8, i%3)
				in.ClientRPC("query", time.Duration(i), nil)
				in.RefLiveness(i%5, i%2 == 0)
				in.ObserveUpdate("repeated-dfs", 1, 2)
				if i%100 == 0 {
					in.Emit(KindRound, map[string]any{"i": i})
				}
			}
		}(w)
	}
	wg.Wait()
	if ex, _, _ := in.Totals(); ex != 8000 {
		t.Errorf("exchanges = %d, want 8000", ex)
	}
	var sb strings.Builder
	if err := in.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pgrid_test_level", "help")
	g.Set(42)
	g.Set(-7) // gauges go down too
	if g.Value() != -7 || g.Name() != "pgrid_test_level" {
		t.Errorf("gauge = %d (%q), want -7", g.Value(), g.Name())
	}
	if again := r.Gauge("pgrid_test_level", "help"); again != g {
		t.Error("re-registration returned a different gauge")
	}

	found := false
	for _, s := range r.Snapshot() {
		if s.Name == "pgrid_test_level" && s.Value == -7 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing gauge: %+v", r.Snapshot())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# TYPE pgrid_test_level gauge", "pgrid_test_level -7"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output %q missing %q", out, want)
		}
	}

	var nilG *Gauge
	nilG.Set(5)
	if nilG.Value() != 0 || nilG.Name() != "" {
		t.Error("nil gauge not inert")
	}
	var nilR *Registry
	if nilR.Gauge("x", "") != nil {
		t.Error("nil registry returned a gauge")
	}
}

func TestObserveHealth(t *testing.T) {
	in := New(3)
	in.ObserveHealth(4, 17, 2, 750, 500, 9)
	got := map[string]int64{}
	for _, s := range in.Registry().Snapshot() {
		got[s.Name] = s.Value
	}
	want := map[string]int64{
		"pgrid_health_path_len":                    4,
		"pgrid_health_entries":                     17,
		"pgrid_health_buddies":                     2,
		"pgrid_health_liveness_permille":           750,
		"pgrid_health_level_liveness_min_permille": 500,
		"pgrid_health_probe_rounds":                9,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	// Gauges hold the latest refresh, not an accumulation.
	in.ObserveHealth(4, 17, 2, -1, -1, 10)
	for _, s := range in.Registry().Snapshot() {
		if s.Name == "pgrid_health_liveness_permille" && s.Value != -1 {
			t.Errorf("liveness gauge = %d, want -1 after refresh", s.Value)
		}
	}

	var nilIn *Instruments
	nilIn.ObserveHealth(1, 2, 3, 4, 5, 6) // must not panic
}
