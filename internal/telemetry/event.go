package telemetry

import (
	"bufio"
	"io"
	"sync"
)

// SchemaVersion is the version stamped into every emitted event (the `v`
// field). Consumers must reject events with a version they do not know.
// Bump it on any incompatible change to Event's encoding; the golden test
// in event_test.go pins the current encoding.
const SchemaVersion = 1

// Event is one structured telemetry event. The simulator (`pgridsim
// -events`) and the networked node (`pgridnode -events`) emit the same
// schema, so one toolchain analyzes both.
//
// Encoded as a single JSON line:
//
//	{"v":1,"ts":1700000000000000000,"node":3,"kind":"exchange","attrs":{"case":"1","depth":0}}
//
// `ts` is Unix nanoseconds (0 when the producer has no clock, e.g. golden
// tests). `node` is the logical peer id, or -1 for a driver that is not a
// peer (the simulator engine, a client tool).
type Event struct {
	V     int            `json:"v"`
	TS    int64          `json:"ts"`
	Node  int            `json:"node"`
	Kind  string         `json:"kind"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Event kinds emitted by pgrid. The set is open: consumers must ignore
// kinds they do not know.
const (
	// KindExchange is one executed exchange (construction meeting),
	// attrs: case, lc, depth.
	KindExchange = "exchange"
	// KindQuery is one completed search, attrs: key, found, hops,
	// backtracks.
	KindQuery = "query"
	// KindRound is a periodic simulator sample, attrs: meetings,
	// exchanges, avg_path_len, target.
	KindRound = "round"
	// KindBuild is the simulator's end-of-construction summary, attrs:
	// n, meetings, exchanges, avg_path_len, converged, seconds.
	KindBuild = "build"
	// KindRPC is one client-side RPC completion, attrs: kind (wire kind
	// name), peer (remote node id), us (duration in microseconds).
	KindRPC = "rpc"
	// KindDrop reports events lost to a full pipeline ring since the last
	// drop report, attrs: dropped (count).
	KindDrop = "drop"
)

// Sink consumes events. Implementations must be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON line per event to an io.Writer, buffered.
// Errors are sticky and reported by Err/Flush rather than per-event, so
// emitters stay non-blocking on the happy path and never have to handle
// sink failures inline.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte // reused per-event encode buffer, guarded by mu
	err error
}

// NewJSONLSink returns a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := appendEvent(s.buf[:0], e)
	s.buf = b[:0]
	if err != nil {
		s.err = err
		return
	}
	s.writeLineLocked(b)
}

// writeRaw writes one already-encoded JSON line (without the trailing
// newline). The pipeline drainer uses it to skip re-encoding.
func (s *JSONLSink) writeRaw(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.writeLineLocked(line)
}

func (s *JSONLSink) writeLineLocked(line []byte) {
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Flush writes buffered events through and returns the first error the
// sink has seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the sink's sticky error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink collects events in memory — the test double.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns the number of events emitted so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
