package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// observeStream feeds vs into q and returns them (convenience).
func observeStream(q *QHist, vs []int64) {
	for _, v := range vs {
		q.Observe(v)
	}
}

// randStream draws n observations from an adversarial mix of scales:
// exact small values, mid-range latencies, heavy tails, bucket-boundary
// values, and zeros.
func randStream(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i] = int64(rng.Intn(qSubCount)) // exact buckets
		case 1:
			out[i] = rng.Int63n(1_000_000) // sub-ms
		case 2:
			out[i] = rng.Int63n(100_000_000) // up to 100ms
		case 3:
			out[i] = rng.Int63() // full range tail
		case 4:
			lo, _ := qBounds(rng.Intn(qBuckets)) // exact bucket boundaries
			out[i] = lo
		default:
			out[i] = 0
		}
	}
	return out
}

func TestQHistSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	r := NewRegistry()
	q := r.Quantile("q", "")
	observeStream(q, randStream(rng, 5000))

	s := q.Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "q" || s.SubBits != qSubBits {
		t.Fatalf("snapshot meta = %q/%d", s.Name, s.SubBits)
	}
	if s.Count != q.Count() || s.Sum != q.Sum() {
		t.Fatalf("snapshot count/sum = %d/%d, live %d/%d", s.Count, s.Sum, q.Count(), q.Sum())
	}
	// Quantiles computed from the snapshot must equal the live histogram's.
	live := q.Quantiles(QuantilePoints...)
	snap := s.Quantiles(QuantilePoints...)
	for i := range live {
		if live[i] != snap[i] {
			t.Errorf("p%v: snapshot %d != live %d", QuantilePoints[i], snap[i], live[i])
		}
	}
}

func TestQHistSnapshotNilAndEmpty(t *testing.T) {
	var q *QHist
	s := q.Snapshot()
	if !s.Empty() || s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Quantiles(QuantilePoints...); got[0] != 0 || got[3] != 0 {
		t.Fatalf("empty quantiles = %v", got)
	}
	if s.CountAtOrBelow(math.MaxInt64) != 0 {
		t.Fatal("empty CountAtOrBelow != 0")
	}
}

// TestMergeMatchesUnion is the central merge property: for random
// per-node streams, quantiles of the merged snapshots must agree with a
// histogram that observed the union of all streams — exactly, since the
// merge is a bucket-wise sum. Cross-checked against the true union
// quantile within the documented ≤3.2% relative error.
func TestMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nodes := 2 + rng.Intn(4)
		var union QHist
		merged := QHistSnapshot{}
		var all []int64
		for i := 0; i < nodes; i++ {
			var q QHist
			stream := randStream(rng, 200+rng.Intn(2000))
			observeStream(&q, stream)
			observeStream(&union, stream)
			all = append(all, stream...)
			var err error
			merged, err = MergeQHist(merged, q.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.Validate(); err != nil {
			t.Fatal(err)
		}
		if merged.Count != union.Count() {
			t.Fatalf("merged count %d != union %d", merged.Count, union.Count())
		}

		mq := merged.Quantiles(QuantilePoints...)
		uq := union.Quantiles(QuantilePoints...)
		for i := range mq {
			if mq[i] != uq[i] {
				t.Fatalf("trial %d p%v: merged %d != union-observed %d", trial, QuantilePoints[i], mq[i], uq[i])
			}
		}

		// And against ground truth: the merged estimate must sit within
		// 3.2% of the exact rank statistic (clamping: values < qSubCount
		// are represented exactly, so tiny quantiles have zero error).
		exact := exactQuantiles(all, QuantilePoints)
		for i, want := range exact {
			got := mq[i]
			if want == 0 {
				if got != 0 {
					t.Fatalf("trial %d p%v: est %d for exact 0", trial, QuantilePoints[i], got)
				}
				continue
			}
			rel := math.Abs(float64(got)-float64(want)) / float64(want)
			if rel > 0.032 {
				t.Fatalf("trial %d p%v: est %d vs exact %d (rel err %.4f > 3.2%%)",
					trial, QuantilePoints[i], got, want, rel)
			}
		}
	}
}

// exactQuantiles computes true rank statistics with the same rank rule
// the histogram uses (rank = ⌈p·n⌉, clamped to ≥1).
func exactQuantiles(vs []int64, ps []float64) []int64 {
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]int64, len(ps))
	for i, p := range ps {
		rank := int64(p * float64(len(sorted)))
		if rank < 1 {
			rank = 1
		}
		v := sorted[rank-1]
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

func TestMergeRejectsGeometryMismatch(t *testing.T) {
	var q QHist
	q.Observe(100)
	a := q.Snapshot()
	b := q.Snapshot()
	b.SubBits = qSubBits + 1
	if _, err := MergeQHist(a, b); err == nil {
		t.Fatal("merge accepted mismatched bucket geometry")
	}
	// The zero value is the merge identity regardless of side.
	m, err := MergeQHist(QHistSnapshot{}, a)
	if err != nil || m.Count != a.Count {
		t.Fatalf("identity merge = %+v, %v", m, err)
	}
	m, err = MergeQHist(a, QHistSnapshot{})
	if err != nil || m.Count != a.Count {
		t.Fatalf("identity merge = %+v, %v", m, err)
	}
}

// TestQuantilesMonotoneAdversarial: rendered quantiles are monotone
// (p50 ≤ p95 ≤ p99 ≤ p999) under adversarial random observation
// streams, including the empty-histogram and single-bucket edge cases.
func TestQuantilesMonotoneAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	check := func(name string, qs []int64) {
		t.Helper()
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				t.Fatalf("%s: quantiles not monotone: %v", name, qs)
			}
		}
	}
	// Empty histogram.
	var empty QHist
	check("empty", empty.Quantiles(QuantilePoints...))
	check("empty-snapshot", empty.Snapshot().Quantiles(QuantilePoints...))
	// Single bucket: every observation identical.
	var single QHist
	for i := 0; i < 100; i++ {
		single.Observe(12345)
	}
	qs := single.Quantiles(QuantilePoints...)
	check("single", qs)
	if qs[0] != qs[3] {
		t.Fatalf("single-bucket quantiles differ: %v", qs)
	}
	// Adversarial random streams, live and merged-snapshot renderings.
	for trial := 0; trial < 50; trial++ {
		var q QHist
		observeStream(&q, randStream(rng, 1+rng.Intn(3000)))
		check("live", q.Quantiles(QuantilePoints...))
		s := q.Snapshot()
		check("snapshot", s.Quantiles(QuantilePoints...))
		m, err := MergeQHist(s, s)
		if err != nil {
			t.Fatal(err)
		}
		check("merged", m.Quantiles(QuantilePoints...))
	}
}

func TestCountAtOrBelow(t *testing.T) {
	var q QHist
	for i := 0; i < 90; i++ {
		q.Observe(1_000_000) // 1ms
	}
	for i := 0; i < 10; i++ {
		q.Observe(50_000_000) // 50ms tail
	}
	s := q.Snapshot()
	if got := s.CountAtOrBelow(5_000_000); got != 90 {
		t.Fatalf("CountAtOrBelow(5ms) = %d, want 90", got)
	}
	if got := s.CountAtOrBelow(math.MaxInt64); got != 100 {
		t.Fatalf("CountAtOrBelow(max) = %d, want 100", got)
	}
	if got := s.CountAtOrBelow(0); got != 0 {
		t.Fatalf("CountAtOrBelow(0) = %d, want 0", got)
	}
}

func TestRegistryMetricsSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Gauge("g", "").Set(-3)
	r.GaugeFunc("gf", "", func() int64 { return 11 })
	r.Quantile("lat_ns", "").Observe(1000)

	m := r.MetricsSnapshot()
	if m.Schema != MetricsSchemaVersion {
		t.Fatalf("schema = %d", m.Schema)
	}
	for name, want := range map[string]int64{"c_total": 7, "g": -3, "gf": 11} {
		if got, ok := m.Stat(name); !ok || got != want {
			t.Errorf("stat %s = %d,%v want %d", name, got, ok, want)
		}
	}
	h, ok := m.Hist("lat_ns")
	if !ok || h.Count != 1 {
		t.Fatalf("hist = %+v, %v", h, ok)
	}
	// Nil registry: schema-stamped empty snapshot.
	var nilReg *Registry
	if m := nilReg.MetricsSnapshot(); m.Schema != MetricsSchemaVersion || len(m.Stats) != 0 {
		t.Fatalf("nil registry snapshot = %+v", m)
	}
	var nilInst *Instruments
	if m := nilInst.MetricsSnapshot(); m.Schema != MetricsSchemaVersion {
		t.Fatalf("nil instruments snapshot = %+v", m)
	}
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	vals := map[string]int64{}
	for _, s := range snap {
		vals[s.Name] = s.Value
	}
	if vals["pgrid_go_goroutines"] < 1 {
		t.Errorf("goroutines gauge = %d", vals["pgrid_go_goroutines"])
	}
	if vals["pgrid_go_heap_bytes"] <= 0 {
		t.Errorf("heap gauge = %d", vals["pgrid_go_heap_bytes"])
	}
	if _, ok := vals["pgrid_go_gc_pause_ns"]; !ok {
		t.Error("gc pause gauge missing")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE pgrid_go_goroutines gauge") {
		t.Errorf("prometheus rendering missing runtime gauge:\n%s", sb.String())
	}
	// Idempotent re-registration.
	RegisterRuntimeMetrics(r)
	if got := len(r.Snapshot()); got != len(snap) {
		t.Errorf("re-registration grew the registry: %d -> %d", len(snap), got)
	}
}
