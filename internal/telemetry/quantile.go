package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// QHist is a log-bucketed quantile histogram over non-negative int64
// observations (latencies in nanoseconds), HDR-style: each power-of-two
// octave is split into qSubCount linear subbuckets, so any observation
// lands in a bucket whose width is at most 1/qSubCount of its magnitude
// and quantile estimates carry at most ~3% relative error (≤5% was the
// design bound). Observe is lock-free — one atomic add on the bucket plus
// count and sum — so it sits on RPC hot paths; Quantile walks a snapshot
// of the buckets.
//
// The fixed-bucket Histogram remains the right tool for small discrete
// quantities (hop counts); QHist exists because latency SLOs (p50/p95/
// p99/p999) need resolution across six orders of magnitude, which no
// fixed bound table provides. Like every instrument it is nil-safe.
type QHist struct {
	name    string
	help    string
	buckets [qBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	ex      atomic.Pointer[qExemplars]
}

// qExemplars holds the optional per-bucket exemplar slots: the most
// recent trace id observed in each bucket. The block is allocated only
// when exemplars are enabled, so an untraced QHist pays one nil pointer
// load per ObserveTraced and nothing per Observe. tailQ is the quantile
// gate applied at snapshot time — only buckets at/above that rank emit
// their exemplar, keeping snapshots focused on the latency tail.
type qExemplars struct {
	tailQ float64
	ids   [qBuckets]atomic.Uint64
}

const (
	// qSubBits sets the subbucket resolution: 2^qSubBits linear buckets
	// per octave. 4 → 16 subbuckets → worst-case relative error
	// 1/(2·16) ≈ 3.1%.
	qSubBits  = 4
	qSubCount = 1 << qSubBits
	// qBuckets covers the full non-negative int64 range: values below
	// qSubCount are exact (one bucket per value), and each of the
	// remaining 63-qSubBits octaves contributes qSubCount buckets.
	qBuckets = qSubCount + (63-qSubBits)*qSubCount
)

// qIndex maps a value to its bucket.
func qIndex(v int64) int {
	if v < qSubCount {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) // ≥ qSubBits+1
	sub := int(v>>(uint(e)-qSubBits-1)) & (qSubCount - 1)
	return qSubCount + (e-qSubBits-1)*qSubCount + sub
}

// qBounds returns the inclusive value range bucket i covers.
func qBounds(i int) (lo, hi int64) {
	if i < qSubCount {
		return int64(i), int64(i)
	}
	o := uint((i - qSubCount) / qSubCount)
	sub := int64(i % qSubCount)
	lo = (qSubCount + sub) << o
	return lo, lo + (1 << o) - 1
}

// Observe records one value. Negative values clamp to 0. No-op on a nil
// receiver.
func (q *QHist) Observe(v int64) {
	if q == nil {
		return
	}
	q.buckets[qIndex(v)].Add(1)
	q.count.Add(1)
	if v > 0 {
		q.sum.Add(v)
	}
}

// EnableExemplars switches on tail-bucket exemplar capture: ObserveTraced
// calls will stamp their trace id into the bucket they land in, and
// Snapshot emits the ids of buckets at/above the tailQ quantile (clamped
// to [0,1]; e.g. 0.99 keeps exemplars for the slowest ~1% of buckets).
// Idempotent; the first caller's tailQ wins. No-op on a nil receiver.
func (q *QHist) EnableExemplars(tailQ float64) {
	if q == nil {
		return
	}
	if tailQ < 0 {
		tailQ = 0
	}
	if tailQ > 1 {
		tailQ = 1
	}
	q.ex.CompareAndSwap(nil, &qExemplars{tailQ: tailQ})
}

// ExemplarsEnabled reports whether exemplar capture is on.
func (q *QHist) ExemplarsEnabled() bool {
	return q != nil && q.ex.Load() != nil
}

// ObserveTraced records one value and, when exemplar capture is enabled
// and traceID is non-zero, stamps traceID as the landing bucket's most
// recent exemplar (one extra atomic store — still lock-free). With
// exemplars disabled or traceID zero it is exactly Observe.
func (q *QHist) ObserveTraced(v int64, traceID uint64) {
	if q == nil {
		return
	}
	i := qIndex(v)
	q.buckets[i].Add(1)
	q.count.Add(1)
	if v > 0 {
		q.sum.Add(v)
	}
	if traceID != 0 {
		if ex := q.ex.Load(); ex != nil {
			ex.ids[i].Store(traceID)
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (q *QHist) Count() int64 {
	if q == nil {
		return 0
	}
	return q.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (q *QHist) Sum() int64 {
	if q == nil {
		return 0
	}
	return q.sum.Load()
}

// Name returns the histogram's registered name.
func (q *QHist) Name() string {
	if q == nil {
		return ""
	}
	return q.name
}

// Quantile estimates the p-quantile (p in [0,1]) as the midpoint of the
// bucket holding the rank-⌈p·count⌉ observation. 0 with no observations
// or a nil receiver.
func (q *QHist) Quantile(p float64) int64 {
	if q == nil {
		return 0
	}
	qs := q.Quantiles(p)
	return qs[0]
}

// Quantiles estimates several quantiles from one consistent bucket
// snapshot, so p50 ≤ p95 ≤ p99 holds even while writers race.
func (q *QHist) Quantiles(ps ...float64) []int64 {
	out := make([]int64, len(ps))
	if q == nil {
		return out
	}
	var snap [qBuckets]int64
	total := int64(0)
	for i := range q.buckets {
		snap[i] = q.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return out
	}
	for j, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rank := int64(p * float64(total))
		if rank < 1 {
			rank = 1
		}
		cum := int64(0)
		for i := range snap {
			cum += snap[i]
			if cum >= rank {
				lo, hi := qBounds(i)
				out[j] = lo + (hi-lo)/2
				break
			}
		}
	}
	return out
}

// QuantilePoints is the quantile set pgrid renders everywhere: the SLO
// points p50, p95, p99, and p999.
var QuantilePoints = []float64{0.5, 0.95, 0.99, 0.999}

// quantileLabels is the Prometheus label value for each QuantilePoints
// entry, in order.
var quantileLabels = []string{"0.5", "0.95", "0.99", "0.999"}
