package telemetry

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline is an asynchronous Sink adapter: emitters enqueue fixed-size
// records onto sharded lock-free ring buffers and return immediately; one
// background drainer goroutine dequeues, orders by timestamp, encodes,
// and forwards to the wrapped sink. The hot path never blocks on I/O,
// JSON encoding, or the sink's mutex — when a ring is full the event is
// dropped and counted instead. Memory is bounded by Shards × RingSize
// records, and the drainer's CPU share is bounded by DrainBudget, so an
// event firehose degrades into drops rather than into application
// latency.
//
// Ordering: records from one node always land on the same shard (FIFO),
// and the drainer stable-sorts each batch by timestamp, so per-node order
// is exact and cross-node order is timestamp order.
//
// The typed emit paths (Instruments.EmitExchange and friends) store
// events as flat fields — no attribute map is allocated on the emitting
// goroutine; the drainer encodes straight from the record. The generic
// Emit(Event) path carries its map through unchanged, for rare kinds.
type Pipeline struct {
	sink  Sink
	jsonl *JSONLSink // fast path when the sink is a JSONLSink
	node  int
	clock func() int64

	shards    []*evRing
	shardMask uint64
	budget    float64 // max fraction of wall-clock the drainer may spend

	emitted atomic.Int64
	drops   atomic.Int64
	dropCtr atomic.Pointer[Counter] // mirror of drops in a Registry

	// sleeping is true while the drainer is parked in select. Producers
	// wake it at most once per sleep cycle (CAS the flag, then signal):
	// a busy emit loop costs one atomic load per event instead of a
	// channel operation, which on a loaded single-core box would make the
	// scheduler ping-pong between emitter and drainer.
	sleeping atomic.Bool
	wake     chan struct{}
	done     chan struct{}
	stopped  chan struct{}

	drainMu  sync.Mutex // serializes drain batches (drainer vs Flush)
	batch    []rec
	buf      []byte
	reported int64 // drops already announced via KindDrop, guarded by drainMu

	closeOnce sync.Once
	closeErr  error
}

// PipelineConfig sizes a Pipeline. Zero values pick the defaults.
type PipelineConfig struct {
	// Shards is the number of independent rings (rounded up to a power
	// of two, default 8). Records shard by node id.
	Shards int
	// RingSize is the per-shard capacity in records (rounded up to a
	// power of two, default 4096).
	RingSize int
	// Interval is the drainer's poll period (default 2ms). The drainer
	// also wakes eagerly when records arrive while it sleeps, so the
	// interval only bounds worst-case delivery latency.
	Interval time.Duration
	// DrainBudget caps the fraction of wall-clock time the drainer may
	// spend encoding and writing (a token bucket; excess events wait in
	// the rings and are dropped once full). On a multi-P runtime the
	// drainer runs on a spare P and only contends for memory bandwidth,
	// but on GOMAXPROCS=1 every drained event steals time from the
	// application — so the default is 0.03 there and 0.5 otherwise.
	// Values >= 1 disable throttling. Flush and Close always drain fully
	// regardless of the budget.
	DrainBudget float64
	// Node stamps drop-report events, used verbatim (drivers that are
	// not a peer should pass -1, matching Event.Node conventions).
	Node int
	// Clock timestamps drop-report events (default time.Now().UnixNano).
	Clock func() int64
}

// NewPipeline wraps sink and starts the drainer goroutine. Close releases
// it.
func NewPipeline(sink Sink, cfg PipelineConfig) *Pipeline {
	shards := ceilPow2(cfg.Shards, 8)
	ringSize := ceilPow2(cfg.RingSize, 4096)
	interval := cfg.Interval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	budget := cfg.DrainBudget
	if budget <= 0 {
		if runtime.GOMAXPROCS(0) == 1 {
			budget = 0.03
		} else {
			budget = 0.5
		}
	}
	p := &Pipeline{
		sink:      sink,
		node:      cfg.Node,
		clock:     clock,
		budget:    budget,
		shards:    make([]*evRing, shards),
		shardMask: uint64(shards - 1),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		stopped:   make(chan struct{}),
	}
	if js, ok := sink.(*JSONLSink); ok {
		p.jsonl = js
	}
	for i := range p.shards {
		p.shards[i] = newEvRing(ringSize)
	}
	go p.run(interval)
	return p
}

// ceilPow2 rounds n up to a power of two, with a default for n <= 0.
func ceilPow2(n, def int) int {
	if n <= 0 {
		return def
	}
	v := 1
	for v < n {
		v <<= 1
	}
	return v
}

// Emit implements Sink: the generic path for events carrying an attribute
// map. The map is handed off as-is; callers must not mutate it afterward.
func (p *Pipeline) Emit(e Event) {
	p.enqueue(rec{ts: e.TS, node: e.Node, rk: recGeneric, gkind: e.Kind, attrs: e.Attrs})
}

// emitExchange enqueues a KindExchange record without allocating.
func (p *Pipeline) emitExchange(ts int64, node int, caseName string, lc, depth, a1, a2 int) {
	p.enqueue(rec{ts: ts, node: node, rk: recExchange, s1: caseName,
		i1: int64(lc), i2: int64(depth), i3: int64(a1), i4: int64(a2)})
}

// emitQuery enqueues a KindQuery record without allocating.
func (p *Pipeline) emitQuery(ts int64, node int, key string, found bool, hops, backtracks int) {
	p.enqueue(rec{ts: ts, node: node, rk: recQuery, s1: key, b1: found,
		i1: int64(hops), i2: int64(backtracks)})
}

// emitRPC enqueues a KindRPC record without allocating.
func (p *Pipeline) emitRPC(ts int64, node int, kind string, peer int, us int64) {
	p.enqueue(rec{ts: ts, node: node, rk: recRPC, s1: kind, i1: int64(peer), i2: us})
}

func (p *Pipeline) enqueue(r rec) {
	shard := p.shards[uint64(r.node+1)&p.shardMask]
	if !shard.enqueue(r) {
		p.drops.Add(1)
		if c := p.dropCtr.Load(); c != nil {
			c.Inc()
		}
		return
	}
	p.emitted.Add(1)
	if p.sleeping.Load() && p.sleeping.CompareAndSwap(true, false) {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// SetDropCounter mirrors future drops into a registry counter (SetSink
// wires pgrid_events_dropped_total here).
func (p *Pipeline) SetDropCounter(c *Counter) {
	if p == nil || c == nil {
		return
	}
	p.dropCtr.Store(c)
}

// Drops returns the number of events discarded on full rings.
func (p *Pipeline) Drops() int64 { return p.drops.Load() }

// Emitted returns the number of events accepted onto rings.
func (p *Pipeline) Emitted() int64 { return p.emitted.Load() }

// Flush drains everything currently buffered through to the wrapped sink
// and flushes it, returning the sink's sticky error if it has one.
func (p *Pipeline) Flush() error {
	p.drain(true, 0)
	if p.jsonl != nil {
		return p.jsonl.Flush()
	}
	return nil
}

// Close stops the drainer, drains remaining records, and flushes the
// wrapped sink. Safe to call more than once; later calls return the first
// result. Events emitted after Close may be silently discarded.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		<-p.stopped
		p.closeErr = p.Flush()
	})
	return p.closeErr
}

func (p *Pipeline) run(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	defer close(p.stopped)
	// The drain budget is a token bucket: allowance accrues at `budget`
	// seconds of drain time per second of wall-clock, and each drain pass
	// spends its own duration. While the allowance is negative the drainer
	// neither drains nor arms the wake flag — producers pay one atomic
	// load per event and the rings absorb (then drop) the excess until the
	// ticker finds a refilled bucket.
	var allowance time.Duration
	maxBurst := 10 * interval
	last := time.Now()
	credit := func() {
		now := time.Now()
		allowance += time.Duration(float64(now.Sub(last)) * p.budget)
		if allowance > maxBurst {
			allowance = maxBurst
		}
		last = now
	}
	drainBudgeted := func(report bool) {
		if p.budget >= 1 {
			p.drain(report, 0)
			return
		}
		credit()
		if allowance <= 0 {
			return
		}
		// Cap the pass so one drain of brim-full rings cannot overshoot
		// the bucket by tens of milliseconds; leftovers wait for the next
		// tick's allowance.
		start := time.Now()
		p.drain(report, 1024)
		allowance -= time.Since(start)
	}
	for {
		if p.budget >= 1 || allowance > 0 {
			// A record enqueued between this store and the select blocking
			// may miss its wake; the ticker picks it up within one interval.
			p.sleeping.Store(true)
		}
		select {
		case <-p.done:
			p.sleeping.Store(false)
			p.drain(true, 0)
			return
		case <-p.wake:
			p.sleeping.Store(false)
			drainBudgeted(false)
		case <-ticker.C:
			p.sleeping.Store(false)
			drainBudgeted(true)
		}
	}
}

// drain moves buffered records to the sink, in timestamp order — all of
// them when limit is 0, at most limit per pass otherwise (spread evenly
// across shards, so no shard starves). reportDrops additionally announces
// drops accumulated since the last report as a KindDrop event.
func (p *Pipeline) drain(reportDrops bool, limit int) {
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	perShard := 0
	if limit > 0 {
		perShard = (limit + len(p.shards) - 1) / len(p.shards)
	}
	p.batch = p.batch[:0]
	for _, r := range p.shards {
		for n := 0; perShard == 0 || n < perShard; n++ {
			ev, ok := r.dequeue()
			if !ok {
				break
			}
			p.batch = append(p.batch, ev)
		}
	}
	sort.SliceStable(p.batch, func(i, j int) bool { return p.batch[i].ts < p.batch[j].ts })
	for i := range p.batch {
		p.deliver(&p.batch[i])
	}
	if reportDrops {
		if d := p.drops.Load(); d > p.reported {
			delta := d - p.reported
			p.reported = d
			p.deliver(&rec{ts: p.clock(), node: p.node, rk: recDrop, i1: delta})
		}
	}
}

func (p *Pipeline) deliver(r *rec) {
	if p.jsonl != nil {
		b, err := r.appendJSON(p.buf[:0])
		p.buf = b[:0]
		if err == nil {
			p.jsonl.writeRaw(b)
			return
		}
		// Fall through to the generic path so the sink records the error.
	}
	p.sink.Emit(r.event())
}

// rec is the fixed-size ring record. Typed kinds use the flat fields;
// recGeneric carries its original map.
type rec struct {
	ts    int64
	node  int
	rk    recKind
	s1    string // exchange: case; query: key; rpc: kind
	b1    bool   // query: found
	i1    int64  // exchange: lc; query: hops; rpc: peer; drop: dropped
	i2    int64  // exchange: depth; query: backtracks; rpc: µs
	i3    int64  // exchange: a1
	i4    int64  // exchange: a2
	gkind string
	attrs map[string]any
}

type recKind uint8

const (
	recGeneric recKind = iota
	recExchange
	recQuery
	recRPC
	recDrop
)

// event materializes the record as an Event (the slow path, and tests).
func (r *rec) event() Event {
	e := Event{V: SchemaVersion, TS: r.ts, Node: r.node}
	switch r.rk {
	case recExchange:
		e.Kind = KindExchange
		e.Attrs = map[string]any{"case": r.s1, "lc": int(r.i1), "depth": int(r.i2),
			"a1": int(r.i3), "a2": int(r.i4)}
	case recQuery:
		e.Kind = KindQuery
		e.Attrs = map[string]any{"key": r.s1, "found": r.b1, "hops": int(r.i1),
			"backtracks": int(r.i2)}
	case recRPC:
		e.Kind = KindRPC
		e.Attrs = map[string]any{"kind": r.s1, "peer": int(r.i1), "us": r.i2}
	case recDrop:
		e.Kind = KindDrop
		e.Attrs = map[string]any{"dropped": r.i1}
	default:
		e.Kind = r.gkind
		e.Attrs = r.attrs
	}
	return e
}

// appendJSON encodes the record exactly as appendEvent(event()) would —
// attribute keys in sorted order — without building the map for typed
// kinds.
func (r *rec) appendJSON(buf []byte) ([]byte, error) {
	if r.rk == recGeneric {
		return appendEvent(buf, Event{V: SchemaVersion, TS: r.ts, Node: r.node,
			Kind: r.gkind, Attrs: r.attrs})
	}
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, SchemaVersion, 10)
	buf = append(buf, `,"ts":`...)
	buf = strconv.AppendInt(buf, r.ts, 10)
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(r.node), 10)
	switch r.rk {
	case recExchange:
		// Sorted keys: a1, a2, case, depth, lc.
		buf = append(buf, `,"kind":"exchange","attrs":{"a1":`...)
		buf = strconv.AppendInt(buf, r.i3, 10)
		buf = append(buf, `,"a2":`...)
		buf = strconv.AppendInt(buf, r.i4, 10)
		buf = append(buf, `,"case":`...)
		buf = appendString(buf, r.s1)
		buf = append(buf, `,"depth":`...)
		buf = strconv.AppendInt(buf, r.i2, 10)
		buf = append(buf, `,"lc":`...)
		buf = strconv.AppendInt(buf, r.i1, 10)
	case recQuery:
		// Sorted keys: backtracks, found, hops, key.
		buf = append(buf, `,"kind":"query","attrs":{"backtracks":`...)
		buf = strconv.AppendInt(buf, r.i2, 10)
		buf = append(buf, `,"found":`...)
		buf = strconv.AppendBool(buf, r.b1)
		buf = append(buf, `,"hops":`...)
		buf = strconv.AppendInt(buf, r.i1, 10)
		buf = append(buf, `,"key":`...)
		buf = appendString(buf, r.s1)
	case recRPC:
		// Sorted keys: kind, peer, us.
		buf = append(buf, `,"kind":"rpc","attrs":{"kind":`...)
		buf = appendString(buf, r.s1)
		buf = append(buf, `,"peer":`...)
		buf = strconv.AppendInt(buf, r.i1, 10)
		buf = append(buf, `,"us":`...)
		buf = strconv.AppendInt(buf, r.i2, 10)
	case recDrop:
		buf = append(buf, `,"kind":"drop","attrs":{"dropped":`...)
		buf = strconv.AppendInt(buf, r.i1, 10)
	}
	return append(buf, '}', '}'), nil
}

// evRing is a bounded MPMC ring (Vyukov's algorithm): each cell carries a
// sequence number that encodes whether it is free for the producer at
// position pos (seq == pos) or holds data for the consumer at pos
// (seq == pos+1). Producers and consumers claim positions with CAS and
// never block each other; a full ring rejects instead of waiting.
type evRing struct {
	cells []evCell
	mask  uint64

	_          [64]byte // keep the positions on separate cache lines
	enqueuePos atomic.Uint64
	_          [64]byte
	dequeuePos atomic.Uint64
	_          [64]byte
}

type evCell struct {
	seq atomic.Uint64
	ev  rec
}

func newEvRing(size int) *evRing {
	r := &evRing{cells: make([]evCell, size), mask: uint64(size - 1)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue adds ev, reporting false (drop) when the ring is full.
func (r *evRing) enqueue(ev rec) bool {
	pos := r.enqueuePos.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if r.enqueuePos.CompareAndSwap(pos, pos+1) {
				cell.ev = ev
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enqueuePos.Load()
		case seq < pos:
			// The cell still holds an unconsumed record: full.
			return false
		default:
			pos = r.enqueuePos.Load()
		}
	}
}

// dequeue removes the oldest record, reporting false when empty.
func (r *evRing) dequeue() (rec, bool) {
	pos := r.dequeuePos.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1:
			if r.dequeuePos.CompareAndSwap(pos, pos+1) {
				ev := cell.ev
				cell.ev = rec{} // release references for GC
				cell.seq.Store(pos + r.mask + 1)
				return ev, true
			}
			pos = r.dequeuePos.Load()
		case seq <= pos:
			return rec{}, false
		default:
			pos = r.dequeuePos.Load()
		}
	}
}
