package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments and renders them. Registration is
// idempotent by name: asking twice for the same name returns the same
// instrument, so independent subsystems can share counters. Names follow
// Prometheus conventions and may carry a label suffix, e.g.
// `pgrid_exchange_case_total{case="1"}` — instruments sharing the base
// name before the '{' are rendered as one metric family.
type Registry struct {
	mu    sync.Mutex
	order []string
	insts map[string]any // *Counter, *Gauge, *GaugeFunc, *Histogram, or *QHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{insts: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is already registered as a different instrument
// kind. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		c, ok := in.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, in))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.insts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// It panics if name is already registered as a different instrument kind.
// Nil-safe like Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		g, ok := in.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, in))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.insts[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. It panics if name is already
// registered as a different instrument kind. Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		h, ok := in.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, in))
		}
		return h
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.insts[name] = h
	r.order = append(r.order, name)
	return h
}

// GaugeFunc is a gauge whose value is computed on demand by a callback,
// for readings that are cheap to take but pointless to track eagerly
// (runtime stats, pool sizes owned by another struct). The callback runs
// only when the registry is rendered or snapshotted, so an idle process
// pays nothing. Nil-safe like every instrument.
type GaugeFunc struct {
	name string
	help string
	fn   func() int64
}

// Value invokes the callback (0 on a nil receiver or nil callback).
func (g *GaugeFunc) Value() int64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// Name returns the gauge's registered name.
func (g *GaugeFunc) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// GaugeFunc registers a callback-backed gauge under name, creating it on
// first use. Re-registering an existing GaugeFunc name returns the
// original (the new callback is ignored), keeping registration idempotent
// like every other instrument. Panics if name is already registered as a
// different instrument kind. Nil-safe like Counter.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		g, ok := in.(*GaugeFunc)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, in))
		}
		return g
	}
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.insts[name] = g
	r.order = append(r.order, name)
	return g
}

// Quantile returns the log-bucketed quantile histogram registered under
// name, creating it on first use. It panics if name is already registered
// as a different instrument kind. Nil-safe like Counter.
func (r *Registry) Quantile(name, help string) *QHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.insts[name]; ok {
		q, ok := in.(*QHist)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, in))
		}
		return q
	}
	q := &QHist{name: name, help: help}
	r.insts[name] = q
	r.order = append(r.order, name)
	return q
}

// Stat is one flattened metric sample: histograms expand into
// `name_bucket{le="…"}`, `name_sum`, and `name_count` entries, and
// quantile histograms into `name{quantile="…"}` summary entries, exactly
// like their Prometheus rendering.
type Stat struct {
	Name  string
	Value int64
}

// Snapshot returns every metric as flat (name, value) pairs in
// registration order. Nil-safe: a nil registry returns nil.
func (r *Registry) Snapshot() []Stat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Stat
	for _, name := range r.order {
		switch in := r.insts[name].(type) {
		case *Counter:
			out = append(out, Stat{Name: name, Value: in.Value()})
		case *Gauge:
			out = append(out, Stat{Name: name, Value: in.Value()})
		case *GaugeFunc:
			out = append(out, Stat{Name: name, Value: in.Value()})
		case *Histogram:
			cum := int64(0)
			for i := range in.buckets {
				cum += in.buckets[i].Load()
				out = append(out, Stat{
					Name:  fmt.Sprintf("%s_bucket{le=%q}", name, leLabel(in.bounds, i)),
					Value: cum,
				})
			}
			out = append(out,
				Stat{Name: name + "_sum", Value: in.Sum()},
				Stat{Name: name + "_count", Value: in.Count()})
		case *QHist:
			qs := in.Quantiles(QuantilePoints...)
			for i, v := range qs {
				out = append(out, Stat{Name: withLabel(name, "quantile", quantileLabels[i]), Value: v})
			}
			out = append(out,
				Stat{Name: suffixed(name, "_sum"), Value: in.Sum()},
				Stat{Name: suffixed(name, "_count"), Value: in.Count()})
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in registration order of
// their first member; HELP/TYPE headers appear once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for _, name := range r.order {
		family := familyOf(name)
		switch in := r.insts[name].(type) {
		case *Counter:
			if !seen[family] {
				seen[family] = true
				if err := writeHeader(w, family, in.help, "counter"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, in.Value()); err != nil {
				return err
			}
		case *Gauge:
			if !seen[family] {
				seen[family] = true
				if err := writeHeader(w, family, in.help, "gauge"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, in.Value()); err != nil {
				return err
			}
		case *GaugeFunc:
			if !seen[family] {
				seen[family] = true
				if err := writeHeader(w, family, in.help, "gauge"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, in.Value()); err != nil {
				return err
			}
		case *Histogram:
			if !seen[family] {
				seen[family] = true
				if err := writeHeader(w, family, in.help, "histogram"); err != nil {
					return err
				}
			}
			cum := int64(0)
			for i := range in.buckets {
				cum += in.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, leLabel(in.bounds, i), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, in.Sum(), name, in.Count()); err != nil {
				return err
			}
		case *QHist:
			if !seen[family] {
				seen[family] = true
				if err := writeHeader(w, family, in.help, "summary"); err != nil {
					return err
				}
			}
			qs := in.Quantiles(QuantilePoints...)
			for i, v := range qs {
				if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(name, "quantile", quantileLabels[i]), v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n", suffixed(name, "_sum"), in.Sum(), suffixed(name, "_count"), in.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, family, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
	return err
}

// familyOf strips the label suffix from an instrument name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// leLabel renders the upper bound of bucket i (the last bucket is +Inf).
func leLabel(bounds []int64, i int) string {
	if i >= len(bounds) {
		return "+Inf"
	}
	return fmt.Sprintf("%d", bounds[i])
}

// Label builds a labeled instrument name, e.g.
// Label("pgrid_rpc_total", "kind", "query") → `pgrid_rpc_total{kind="query"}`.
func Label(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// suffixed inserts a family suffix before any label braces:
// suffixed(`m{kind="query"}`, "_sum") → `m_sum{kind="query"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends one more label to a possibly-already-labeled name:
// withLabel(`m{kind="query"}`, "quantile", "0.5") →
// `m{kind="query",quantile="0.5"}`.
func withLabel(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return fmt.Sprintf("%s,%s=%q}", name[:len(name)-1], key, value)
	}
	return Label(name, key, value)
}

// sortStats orders a snapshot by name (used by tests; the live snapshot
// keeps registration order, which groups families together).
func sortStats(stats []Stat) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
}
