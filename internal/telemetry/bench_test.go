package telemetry

import (
	"io"
	"testing"
	"time"
)

// The nil fast path is what the construction hot loop pays when telemetry
// is disabled — it must stay at a branch and a return.
func BenchmarkExchangeCaseNil(b *testing.B) {
	var in *Instruments
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.ExchangeCase(ExCase1)
	}
}

func BenchmarkExchangeCaseEnabled(b *testing.B) {
	in := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.ExchangeCase(i % 6)
	}
}

func BenchmarkObserveQueryEnabled(b *testing.B) {
	in := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.ObserveQuery(true, i%8, i%3)
	}
}

func BenchmarkClientRPCEnabled(b *testing.B) {
	in := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.ClientRPC("query", time.Duration(i), nil)
	}
}

func BenchmarkEmitNoSink(b *testing.B) {
	in := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Emit(KindRound, nil)
	}
}

func BenchmarkEmitJSONL(b *testing.B) {
	in := New(0)
	in.SetSink(NewJSONLSink(io.Discard))
	attrs := map[string]any{"case": "1", "lc": 2, "depth": 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Emit(KindExchange, attrs)
	}
}
