package telemetry

import (
	"io"
	"testing"
)

// The emit-path benchmarks measure what an instrumented hot loop pays per
// event in each sink configuration. The pipeline numbers include the
// drainer's amortized share (it runs on the same GOMAXPROCS budget).

func BenchmarkEmitExchangeSyncJSONL(b *testing.B) {
	in := New(1)
	in.SetSink(NewJSONLSink(io.Discard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EmitExchange("case2", 3, 1, 7, 9)
	}
}

func BenchmarkEmitExchangePipeline(b *testing.B) {
	in := New(1)
	pipe := NewPipeline(NewJSONLSink(io.Discard), PipelineConfig{Node: 1})
	defer pipe.Close()
	in.SetSink(pipe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EmitExchange("case2", 3, 1, 7, 9)
	}
}

func BenchmarkEmitRPCPipeline(b *testing.B) {
	in := New(1)
	pipe := NewPipeline(NewJSONLSink(io.Discard), PipelineConfig{Node: 1})
	defer pipe.Close()
	in.SetSink(pipe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EmitRPC("query", 7, 1234)
	}
}

func BenchmarkQHistObserve(b *testing.B) {
	var h QHist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*31 + 1)
	}
}
