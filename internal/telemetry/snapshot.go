package telemetry

import "fmt"

// MetricsSchemaVersion versions the mergeable metrics snapshot carried by
// wire.KindMetricsResp: the flattened counter/gauge Stats plus the sparse
// QHistSnapshot encoding below. Bump it when the snapshot layout or the
// histogram bucket geometry changes incompatibly.
const MetricsSchemaVersion = 1

// QHistSnapshot is a point-in-time, mergeable copy of one QHist in a
// compact sparse encoding: only occupied buckets are carried, as parallel
// (Idx, N) arrays sorted by ascending bucket index. Because QHist buckets
// are plain counts (not cumulative), two snapshots taken on different
// nodes merge by summing counts bucket-by-bucket, and quantiles computed
// from the merged snapshot carry the same ≤3.2% worst-case relative error
// as a histogram that observed the union of both value streams directly.
//
// SubBits records the bucket geometry (QHist's qSubBits) so a snapshot
// from a build with a different resolution is rejected at merge time
// instead of silently mis-bucketed.
type QHistSnapshot struct {
	Name    string
	SubBits uint8
	Count   int64
	Sum     int64
	Idx     []uint16
	N       []int64
}

// Snapshot copies the histogram's occupied buckets into the sparse
// mergeable form. Count is recomputed from the bucket sweep so Count ==
// ΣN holds even while writers race. Nil-safe: a nil QHist yields an
// empty (but geometry-stamped) snapshot.
func (q *QHist) Snapshot() QHistSnapshot {
	s := QHistSnapshot{SubBits: qSubBits}
	if q == nil {
		return s
	}
	s.Name = q.name
	for i := range q.buckets {
		n := q.buckets[i].Load()
		if n > 0 {
			s.Idx = append(s.Idx, uint16(i))
			s.N = append(s.N, n)
			s.Count += n
		}
	}
	s.Sum = q.sum.Load()
	return s
}

// Empty reports whether the snapshot holds no observations.
func (s QHistSnapshot) Empty() bool { return len(s.Idx) == 0 }

// Validate checks structural invariants: parallel arrays, strictly
// ascending in-range bucket indexes, positive counts, Count == ΣN, and a
// bucket geometry this build can interpret. An empty snapshot with
// SubBits 0 (the zero value) is valid — it merges as the identity.
func (s QHistSnapshot) Validate() error {
	if len(s.Idx) != len(s.N) {
		return fmt.Errorf("telemetry: snapshot %q: %d indexes vs %d counts", s.Name, len(s.Idx), len(s.N))
	}
	if s.SubBits != qSubBits && !(s.SubBits == 0 && s.Empty()) {
		return fmt.Errorf("telemetry: snapshot %q: bucket geometry 2^%d subbuckets, this build uses 2^%d", s.Name, s.SubBits, qSubBits)
	}
	total := int64(0)
	for i, idx := range s.Idx {
		if int(idx) >= qBuckets {
			return fmt.Errorf("telemetry: snapshot %q: bucket index %d out of range", s.Name, idx)
		}
		if i > 0 && idx <= s.Idx[i-1] {
			return fmt.Errorf("telemetry: snapshot %q: bucket indexes not ascending at %d", s.Name, i)
		}
		if s.N[i] <= 0 {
			return fmt.Errorf("telemetry: snapshot %q: non-positive count %d in bucket %d", s.Name, s.N[i], idx)
		}
		total += s.N[i]
	}
	if total != s.Count {
		return fmt.Errorf("telemetry: snapshot %q: count %d != bucket sum %d", s.Name, s.Count, total)
	}
	return nil
}

// MergeQHist returns the bucket-wise sum of two snapshots — the snapshot
// a single histogram would have produced had it observed both nodes'
// value streams. Either side may be the zero value (identity). Merging
// snapshots with different bucket geometries is an error: their indexes
// name different value ranges and summing them would corrupt quantiles.
func MergeQHist(a, b QHistSnapshot) (QHistSnapshot, error) {
	if a.Empty() && a.SubBits == 0 {
		a.SubBits = b.SubBits
	}
	if b.Empty() && b.SubBits == 0 {
		b.SubBits = a.SubBits
	}
	if a.SubBits != b.SubBits {
		return QHistSnapshot{}, fmt.Errorf("telemetry: merge %q: bucket geometry mismatch (2^%d vs 2^%d subbuckets)", a.Name, a.SubBits, b.SubBits)
	}
	out := QHistSnapshot{
		Name:    a.Name,
		SubBits: a.SubBits,
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Idx:     make([]uint16, 0, len(a.Idx)+len(b.Idx)),
		N:       make([]int64, 0, len(a.Idx)+len(b.Idx)),
	}
	if out.Name == "" {
		out.Name = b.Name
	}
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.N = append(out.N, a.N[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.N = append(out.N, b.N[j])
			j++
		default: // same bucket on both sides
			out.Idx = append(out.Idx, a.Idx[i])
			out.N = append(out.N, a.N[i]+b.N[j])
			i++
			j++
		}
	}
	return out, nil
}

// Quantiles estimates the given quantiles from the snapshot, with the
// same rank-to-bucket-midpoint rule as QHist.Quantiles. Returns zeros for
// an empty snapshot.
func (s QHistSnapshot) Quantiles(ps ...float64) []int64 {
	out := make([]int64, len(ps))
	total := int64(0)
	for _, n := range s.N {
		total += n
	}
	if total == 0 {
		return out
	}
	for j, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rank := int64(p * float64(total))
		if rank < 1 {
			rank = 1
		}
		cum := int64(0)
		for i, n := range s.N {
			cum += n
			if cum >= rank {
				lo, hi := qBounds(int(s.Idx[i]))
				out[j] = lo + (hi-lo)/2
				break
			}
		}
	}
	return out
}

// Quantile estimates one quantile from the snapshot.
func (s QHistSnapshot) Quantile(p float64) int64 { return s.Quantiles(p)[0] }

// CountAtOrBelow returns how many observations landed in buckets whose
// midpoint is ≤ v — the "good event" count for a latency SLO with
// threshold v. The bucket containing v is counted entirely good or
// entirely bad by its midpoint, so the split inherits the histogram's
// ≤3.2% bucket-width error.
func (s QHistSnapshot) CountAtOrBelow(v int64) int64 {
	good := int64(0)
	for i, idx := range s.Idx {
		lo, hi := qBounds(int(idx))
		if lo+(hi-lo)/2 > v {
			break
		}
		good += s.N[i]
	}
	return good
}

// MetricsSnapshot is one node's full telemetry state in mergeable form:
// counters, gauges, and fixed-bucket histograms flattened to Stats
// (cumulative values, so summing across nodes is the cluster total), and
// every quantile histogram as a sparse QHistSnapshot.
type MetricsSnapshot struct {
	Schema int
	Stats  []Stat
	Hists  []QHistSnapshot
}

// Hist returns the named histogram snapshot and whether it was present.
func (m MetricsSnapshot) Hist(name string) (QHistSnapshot, bool) {
	for _, h := range m.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return QHistSnapshot{}, false
}

// Stat returns the named flat sample's value and whether it was present.
func (m MetricsSnapshot) Stat(name string) (int64, bool) {
	for _, s := range m.Stats {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// MetricsSnapshot captures the registry's full state for federation.
// Unlike Snapshot, quantile histograms are not pre-rendered to their
// summary quantiles (which cannot be merged) but carried as sparse bucket
// snapshots. Nil-safe: a nil registry yields an empty, schema-stamped
// snapshot.
func (r *Registry) MetricsSnapshot() MetricsSnapshot {
	m := MetricsSnapshot{Schema: MetricsSchemaVersion}
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		switch in := r.insts[name].(type) {
		case *Counter:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *Gauge:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *GaugeFunc:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *Histogram:
			cum := int64(0)
			for i := range in.buckets {
				cum += in.buckets[i].Load()
				m.Stats = append(m.Stats, Stat{
					Name:  fmt.Sprintf("%s_bucket{le=%q}", name, leLabel(in.bounds, i)),
					Value: cum,
				})
			}
			m.Stats = append(m.Stats,
				Stat{Name: name + "_sum", Value: in.Sum()},
				Stat{Name: name + "_count", Value: in.Count()})
		case *QHist:
			m.Hists = append(m.Hists, in.Snapshot())
		}
	}
	return m
}

// MetricsSnapshot captures the instruments' registry for federation.
// Nil-safe.
func (t *Instruments) MetricsSnapshot() MetricsSnapshot {
	if t == nil {
		return MetricsSnapshot{Schema: MetricsSchemaVersion}
	}
	return t.reg.MetricsSnapshot()
}
