package telemetry

import (
	"fmt"
	"time"
)

// MetricsSchemaVersion versions the mergeable metrics snapshot carried by
// wire.KindMetricsResp: the flattened counter/gauge Stats plus the sparse
// QHistSnapshot encoding below. Bump it when the snapshot layout or the
// histogram bucket geometry changes incompatibly.
//
// v1: Stats + Hists (Idx/N sparse buckets).
// v2: adds StartEpochNS/UptimeNS incarnation stamps on the snapshot and
// tail-bucket exemplars (ExIdx/ExTrace) on QHistSnapshot. The binary
// codec keys the extra fields off the Schema value it decodes, so v1
// bodies from pre-history peers still decode against a v2 reader.
const MetricsSchemaVersion = 2

// MetricsSchemaV1 is the pre-history snapshot layout, kept as a named
// constant because the codecs and compat tests must keep decoding it.
const MetricsSchemaV1 = 1

// QHistSnapshot is a point-in-time, mergeable copy of one QHist in a
// compact sparse encoding: only occupied buckets are carried, as parallel
// (Idx, N) arrays sorted by ascending bucket index. Because QHist buckets
// are plain counts (not cumulative), two snapshots taken on different
// nodes merge by summing counts bucket-by-bucket, and quantiles computed
// from the merged snapshot carry the same ≤3.2% worst-case relative error
// as a histogram that observed the union of both value streams directly.
//
// SubBits records the bucket geometry (QHist's qSubBits) so a snapshot
// from a build with a different resolution is rejected at merge time
// instead of silently mis-bucketed.
type QHistSnapshot struct {
	Name    string
	SubBits uint8
	Count   int64
	Sum     int64
	Idx     []uint16
	N       []int64
	// ExIdx/ExTrace are parallel tail-bucket exemplars (schema v2): the
	// most recent trace id observed in bucket ExIdx[i], emitted only for
	// occupied buckets at/above the histogram's exemplar quantile. They
	// are informational pointers into the flight recorder, not counts,
	// so merging keeps either side's id and subtraction keeps the
	// current side's.
	ExIdx   []uint16
	ExTrace []uint64
}

// Snapshot copies the histogram's occupied buckets into the sparse
// mergeable form. Count is recomputed from the bucket sweep so Count ==
// ΣN holds even while writers race. When exemplars are enabled, buckets
// at/above the configured tail quantile carry their most recent trace
// id. Nil-safe: a nil QHist yields an empty (but geometry-stamped)
// snapshot.
func (q *QHist) Snapshot() QHistSnapshot {
	s := QHistSnapshot{SubBits: qSubBits}
	if q == nil {
		return s
	}
	s.Name = q.name
	for i := range q.buckets {
		n := q.buckets[i].Load()
		if n > 0 {
			s.Idx = append(s.Idx, uint16(i))
			s.N = append(s.N, n)
			s.Count += n
		}
	}
	s.Sum = q.sum.Load()
	if ex := q.ex.Load(); ex != nil && s.Count > 0 {
		// Rank of the first "tail" observation: buckets whose cumulative
		// count reaches it are at/above the tail quantile.
		rank := int64(ex.tailQ * float64(s.Count))
		if rank < 1 {
			rank = 1
		}
		cum := int64(0)
		for i, idx := range s.Idx {
			cum += s.N[i]
			if cum < rank {
				continue
			}
			if id := ex.ids[idx].Load(); id != 0 {
				s.ExIdx = append(s.ExIdx, idx)
				s.ExTrace = append(s.ExTrace, id)
			}
		}
	}
	return s
}

// Exemplar returns the trace id recorded for bucket idx (0 if none).
func (s QHistSnapshot) Exemplar(idx uint16) uint64 {
	for i, e := range s.ExIdx {
		if e == idx {
			return s.ExTrace[i]
		}
	}
	return 0
}

// TailExemplar returns the exemplar of the highest bucket carrying one —
// the trace behind the worst latency the histogram has seen recently —
// along with that bucket's upper value bound. ok is false when the
// snapshot carries no exemplars.
func (s QHistSnapshot) TailExemplar() (traceID uint64, atOrBelow int64, ok bool) {
	if len(s.ExIdx) == 0 {
		return 0, 0, false
	}
	last := len(s.ExIdx) - 1
	_, hi := qBounds(int(s.ExIdx[last]))
	return s.ExTrace[last], hi, true
}

// Empty reports whether the snapshot holds no observations.
func (s QHistSnapshot) Empty() bool { return len(s.Idx) == 0 }

// Validate checks structural invariants: parallel arrays, strictly
// ascending in-range bucket indexes, positive counts, Count == ΣN, and a
// bucket geometry this build can interpret. An empty snapshot with
// SubBits 0 (the zero value) is valid — it merges as the identity.
func (s QHistSnapshot) Validate() error {
	if len(s.Idx) != len(s.N) {
		return fmt.Errorf("telemetry: snapshot %q: %d indexes vs %d counts", s.Name, len(s.Idx), len(s.N))
	}
	if s.SubBits != qSubBits && !(s.SubBits == 0 && s.Empty()) {
		return fmt.Errorf("telemetry: snapshot %q: bucket geometry 2^%d subbuckets, this build uses 2^%d", s.Name, s.SubBits, qSubBits)
	}
	total := int64(0)
	for i, idx := range s.Idx {
		if int(idx) >= qBuckets {
			return fmt.Errorf("telemetry: snapshot %q: bucket index %d out of range", s.Name, idx)
		}
		if i > 0 && idx <= s.Idx[i-1] {
			return fmt.Errorf("telemetry: snapshot %q: bucket indexes not ascending at %d", s.Name, i)
		}
		if s.N[i] <= 0 {
			return fmt.Errorf("telemetry: snapshot %q: non-positive count %d in bucket %d", s.Name, s.N[i], idx)
		}
		total += s.N[i]
	}
	if total != s.Count {
		return fmt.Errorf("telemetry: snapshot %q: count %d != bucket sum %d", s.Name, s.Count, total)
	}
	if len(s.ExIdx) != len(s.ExTrace) {
		return fmt.Errorf("telemetry: snapshot %q: %d exemplar indexes vs %d trace ids", s.Name, len(s.ExIdx), len(s.ExTrace))
	}
	for i, idx := range s.ExIdx {
		if int(idx) >= qBuckets {
			return fmt.Errorf("telemetry: snapshot %q: exemplar bucket index %d out of range", s.Name, idx)
		}
		if i > 0 && idx <= s.ExIdx[i-1] {
			return fmt.Errorf("telemetry: snapshot %q: exemplar indexes not ascending at %d", s.Name, i)
		}
		if s.ExTrace[i] == 0 {
			return fmt.Errorf("telemetry: snapshot %q: zero trace id in exemplar bucket %d", s.Name, idx)
		}
	}
	return nil
}

// MergeQHist returns the bucket-wise sum of two snapshots — the snapshot
// a single histogram would have produced had it observed both nodes'
// value streams. Either side may be the zero value (identity). Merging
// snapshots with different bucket geometries is an error: their indexes
// name different value ranges and summing them would corrupt quantiles.
func MergeQHist(a, b QHistSnapshot) (QHistSnapshot, error) {
	if a.Empty() && a.SubBits == 0 {
		a.SubBits = b.SubBits
	}
	if b.Empty() && b.SubBits == 0 {
		b.SubBits = a.SubBits
	}
	if a.SubBits != b.SubBits {
		return QHistSnapshot{}, fmt.Errorf("telemetry: merge %q: bucket geometry mismatch (2^%d vs 2^%d subbuckets)", a.Name, a.SubBits, b.SubBits)
	}
	out := QHistSnapshot{
		Name:    a.Name,
		SubBits: a.SubBits,
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Idx:     make([]uint16, 0, len(a.Idx)+len(b.Idx)),
		N:       make([]int64, 0, len(a.Idx)+len(b.Idx)),
	}
	if out.Name == "" {
		out.Name = b.Name
	}
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.N = append(out.N, a.N[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.N = append(out.N, b.N[j])
			j++
		default: // same bucket on both sides
			out.Idx = append(out.Idx, a.Idx[i])
			out.N = append(out.N, a.N[i]+b.N[j])
			i++
			j++
		}
	}
	out.ExIdx, out.ExTrace = mergeExemplars(a, b)
	return out, nil
}

// mergeExemplars unions two snapshots' exemplar lists. On a shared
// bucket b's id wins: crawls merge peers into an accumulator left to
// right, so the later (more recently fetched) side is kept.
func mergeExemplars(a, b QHistSnapshot) (idx []uint16, ids []uint64) {
	i, j := 0, 0
	for i < len(a.ExIdx) || j < len(b.ExIdx) {
		switch {
		case j >= len(b.ExIdx) || (i < len(a.ExIdx) && a.ExIdx[i] < b.ExIdx[j]):
			idx = append(idx, a.ExIdx[i])
			ids = append(ids, a.ExTrace[i])
			i++
		case i >= len(a.ExIdx) || b.ExIdx[j] < a.ExIdx[i]:
			idx = append(idx, b.ExIdx[j])
			ids = append(ids, b.ExTrace[j])
			j++
		default:
			idx = append(idx, b.ExIdx[j])
			ids = append(ids, b.ExTrace[j])
			i++
			j++
		}
	}
	return idx, ids
}

// SubtractQHist returns the windowed delta cur − base: the snapshot a
// histogram would have produced had it observed only the interval
// between base and cur. Exemplars come from cur (they are "most recent"
// pointers, still valid for the window). reset reports that cur does
// not extend base — some bucket shrank, which happens exactly when the
// process restarted between the two samples — in which case cur itself
// is returned and callers should treat the window as starting at the
// restart rather than synthesizing a negative rate. Geometry mismatch
// is an error as in MergeQHist.
func SubtractQHist(cur, base QHistSnapshot) (delta QHistSnapshot, reset bool, err error) {
	if base.Empty() && base.SubBits == 0 {
		base.SubBits = cur.SubBits
	}
	if cur.Empty() && cur.SubBits == 0 {
		cur.SubBits = base.SubBits
	}
	if cur.SubBits != base.SubBits {
		return QHistSnapshot{}, false, fmt.Errorf("telemetry: subtract %q: bucket geometry mismatch (2^%d vs 2^%d subbuckets)", cur.Name, cur.SubBits, base.SubBits)
	}
	out := QHistSnapshot{
		Name:    cur.Name,
		SubBits: cur.SubBits,
		ExIdx:   cur.ExIdx,
		ExTrace: cur.ExTrace,
	}
	j := 0
	for i, idx := range cur.Idx {
		n := cur.N[i]
		for j < len(base.Idx) && base.Idx[j] < idx {
			// base observed a bucket cur no longer has: a reset.
			return cur, true, nil
		}
		if j < len(base.Idx) && base.Idx[j] == idx {
			n -= base.N[j]
			j++
		}
		if n < 0 {
			return cur, true, nil
		}
		if n > 0 {
			out.Idx = append(out.Idx, idx)
			out.N = append(out.N, n)
			out.Count += n
		}
	}
	if j < len(base.Idx) {
		return cur, true, nil
	}
	out.Sum = cur.Sum - base.Sum
	if out.Sum < 0 {
		out.Sum = 0
	}
	return out, false, nil
}

// Quantiles estimates the given quantiles from the snapshot, with the
// same rank-to-bucket-midpoint rule as QHist.Quantiles. Returns zeros for
// an empty snapshot.
func (s QHistSnapshot) Quantiles(ps ...float64) []int64 {
	out := make([]int64, len(ps))
	total := int64(0)
	for _, n := range s.N {
		total += n
	}
	if total == 0 {
		return out
	}
	for j, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rank := int64(p * float64(total))
		if rank < 1 {
			rank = 1
		}
		cum := int64(0)
		for i, n := range s.N {
			cum += n
			if cum >= rank {
				lo, hi := qBounds(int(s.Idx[i]))
				out[j] = lo + (hi-lo)/2
				break
			}
		}
	}
	return out
}

// Quantile estimates one quantile from the snapshot.
func (s QHistSnapshot) Quantile(p float64) int64 { return s.Quantiles(p)[0] }

// CountAtOrBelow returns how many observations landed in buckets whose
// midpoint is ≤ v — the "good event" count for a latency SLO with
// threshold v. The bucket containing v is counted entirely good or
// entirely bad by its midpoint, so the split inherits the histogram's
// ≤3.2% bucket-width error.
func (s QHistSnapshot) CountAtOrBelow(v int64) int64 {
	good := int64(0)
	for i, idx := range s.Idx {
		lo, hi := qBounds(int(idx))
		if lo+(hi-lo)/2 > v {
			break
		}
		good += s.N[i]
	}
	return good
}

// MetricsSnapshot is one node's full telemetry state in mergeable form:
// counters, gauges, and fixed-bucket histograms flattened to Stats
// (cumulative values, so summing across nodes is the cluster total), and
// every quantile histogram as a sparse QHistSnapshot.
type MetricsSnapshot struct {
	Schema int
	// StartEpochNS identifies the process incarnation (node start time,
	// unix nanoseconds) and UptimeNS the monotonic time since then
	// (schema v2; both zero on v1 snapshots and bare-registry captures).
	// Two snapshots with different epochs must never be delta'd — the
	// counters restarted from zero in between.
	StartEpochNS int64
	UptimeNS     int64
	Stats        []Stat
	Hists        []QHistSnapshot
}

// SameEpoch reports whether two snapshots come from the same process
// incarnation, i.e. whether computing b−a deltas is meaningful. Unknown
// epochs (0, from v1 peers) are conservatively treated as same.
func (m MetricsSnapshot) SameEpoch(b MetricsSnapshot) bool {
	if m.StartEpochNS == 0 || b.StartEpochNS == 0 {
		return true
	}
	return m.StartEpochNS == b.StartEpochNS
}

// Hist returns the named histogram snapshot and whether it was present.
func (m MetricsSnapshot) Hist(name string) (QHistSnapshot, bool) {
	for _, h := range m.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return QHistSnapshot{}, false
}

// Stat returns the named flat sample's value and whether it was present.
func (m MetricsSnapshot) Stat(name string) (int64, bool) {
	for _, s := range m.Stats {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// MetricsSnapshot captures the registry's full state for federation.
// Unlike Snapshot, quantile histograms are not pre-rendered to their
// summary quantiles (which cannot be merged) but carried as sparse bucket
// snapshots. Nil-safe: a nil registry yields an empty, schema-stamped
// snapshot.
func (r *Registry) MetricsSnapshot() MetricsSnapshot {
	m := MetricsSnapshot{Schema: MetricsSchemaVersion}
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		switch in := r.insts[name].(type) {
		case *Counter:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *Gauge:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *GaugeFunc:
			m.Stats = append(m.Stats, Stat{Name: name, Value: in.Value()})
		case *Histogram:
			cum := int64(0)
			for i := range in.buckets {
				cum += in.buckets[i].Load()
				m.Stats = append(m.Stats, Stat{
					Name:  fmt.Sprintf("%s_bucket{le=%q}", name, leLabel(in.bounds, i)),
					Value: cum,
				})
			}
			m.Stats = append(m.Stats,
				Stat{Name: name + "_sum", Value: in.Sum()},
				Stat{Name: name + "_count", Value: in.Count()})
		case *QHist:
			m.Hists = append(m.Hists, in.Snapshot())
		}
	}
	return m
}

// MetricsSnapshot captures the instruments' registry for federation,
// stamped with the process incarnation (start epoch + monotonic uptime)
// so downstream delta math can tell restarts from negative rates.
// Nil-safe.
func (t *Instruments) MetricsSnapshot() MetricsSnapshot {
	if t == nil {
		return MetricsSnapshot{Schema: MetricsSchemaVersion}
	}
	m := t.reg.MetricsSnapshot()
	m.StartEpochNS = t.start.UnixNano()
	m.UptimeNS = int64(time.Since(t.start))
	return m
}
