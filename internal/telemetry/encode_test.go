package telemetry

import (
	"encoding/json"
	"math"
	"testing"
)

// TestAppendEventMatchesMarshal pins the append encoder to
// encoding/json.Marshal byte-for-byte across the attr types and string
// contents events actually carry, plus hostile edge cases.
func TestAppendEventMatchesMarshal(t *testing.T) {
	events := []Event{
		{V: 1, TS: 0, Node: -1, Kind: "build"},
		{V: 1, TS: 1700000000000000000, Node: 3, Kind: "exchange",
			Attrs: map[string]any{"case": "1", "lc": 0, "depth": 2, "a1": 7, "a2": 9}},
		{V: 1, TS: 1700000000001000000, Node: 0, Kind: "query",
			Attrs: map[string]any{"key": "010011", "found": true, "hops": 4, "backtracks": 0}},
		{V: 1, TS: 42, Node: 1, Kind: "rpc",
			Attrs: map[string]any{"kind": "query", "peer": 2, "us": int64(1234)}},
		{V: 1, TS: 43, Node: 1, Kind: "drop", Attrs: map[string]any{"dropped": int64(17)}},
		{V: 1, TS: 44, Node: 2, Kind: "round",
			Attrs: map[string]any{"avg_path_len": 3.25, "meetings": 1000, "converged": false}},
		{V: 1, TS: 45, Node: 2, Kind: "build",
			Attrs: map[string]any{"seconds": 0.0000001, "big": 1e22, "neg": -2.5e-9, "zero": 0.0, "negzero": float64(0)}},
		{V: 1, TS: 46, Node: 2, Kind: "weird",
			Attrs: map[string]any{
				"html":    "<a href=\"x\">&amp;</a>",
				"ctl":     "tab\tnl\ncr\rbs\bff\fbell\x07",
				"unicode": "héllo wörld ☃",
				"seps":    "a\u2028b\u2029c",
				"invalid": "bad\xffutf8",
				"empty":   "",
				"nilval":  nil,
				"i32":     int32(-5),
				"u64":     uint64(1 << 63),
				"slice":   []int{1, 2, 3},
			}},
	}
	for _, e := range events {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", e, err)
		}
		got, err := appendEvent(nil, e)
		if err != nil {
			t.Fatalf("appendEvent(%+v): %v", e, err)
		}
		if string(got) != string(want) {
			t.Errorf("encoding mismatch for kind %s:\n got  %s\n want %s", e.Kind, got, want)
		}
	}
}

// TestAppendEventReusesBuffer checks the append contract: encoding into a
// truncated buffer reuses its capacity and still matches Marshal.
func TestAppendEventReusesBuffer(t *testing.T) {
	e := Event{V: 1, TS: 7, Node: 0, Kind: "exchange", Attrs: map[string]any{"case": "2"}}
	buf := make([]byte, 0, 256)
	for i := 0; i < 3; i++ {
		var err error
		buf, err = appendEvent(buf[:0], e)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(e)
		if string(buf) != string(want) {
			t.Fatalf("iteration %d: got %s want %s", i, buf, want)
		}
	}
}

// TestAppendEventError checks unsupported attr values surface an error
// instead of corrupt output.
func TestAppendEventError(t *testing.T) {
	e := Event{V: 1, Kind: "bad", Attrs: map[string]any{"fn": func() {}}}
	if _, err := appendEvent(nil, e); err == nil {
		t.Error("expected error for unmarshalable attr")
	}
	e = Event{V: 1, Kind: "bad", Attrs: map[string]any{"nan": math.NaN()}}
	if _, err := appendEvent(nil, e); err == nil {
		t.Error("expected error for NaN attr")
	}
}
