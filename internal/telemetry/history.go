package telemetry

import (
	"sync"
	"time"
)

// History is a fixed-memory ring of periodic MetricsSnapshot samples —
// the node's flight-data recorder. A sampler appends one cumulative
// snapshot per interval; the ring keeps retention/interval of them
// (e.g. 2s × 5m → 150 points) and older points are overwritten in
// place, so memory is bounded for the life of the process. Every
// stored snapshot carries its incarnation stamp (StartEpochNS), so a
// restart in the middle of the window reads as a counter reset rather
// than a negative rate.
//
// Reads hand out a HistoryDump — an immutable, wire-shippable copy —
// and all rate/quantile math lives on the dump, so the same code runs
// server-side (against the local ring), client-side (against a
// federated dump), and in tests (against a synthetic one).
type History struct {
	mu       sync.Mutex
	interval time.Duration
	points   []HistoryPoint // ring storage
	next     int            // slot the next Record writes
	count    int            // valid points, ≤ len(points)
	total    int64          // lifetime samples accepted
	now      func() time.Time
}

// HistoryPoint is one periodic sample: the cumulative telemetry state
// at one wall-clock instant.
type HistoryPoint struct {
	AtNS int64
	Snap MetricsSnapshot
}

// HistoryDump is the immutable read/wire form of a History: points
// oldest-first, with the sampling resolution so consumers can label
// per-interval series. A dump with a single point degrades gracefully
// (no rates, instantaneous quantiles only) — that is exactly what a
// pre-history peer's snapshot fallback produces.
type HistoryDump struct {
	Schema     int
	IntervalNS int64
	Points     []HistoryPoint
}

// historyMaxPoints bounds ring capacity regardless of the configured
// retention/interval ratio, keeping the "fixed-memory" promise even
// against a mis-typed flag (a snapshot is a few KB; 4096 of them stay
// in the tens of MB, and a KindHistoryResp stays far under the frame
// size cap).
const historyMaxPoints = 4096

// NewHistory returns a ring sampling at the given interval and keeping
// retention worth of points (at least 2, at most historyMaxPoints).
// Returns nil — and every method is nil-safe — when interval is
// non-positive, so callers gate the whole feature on one constructor.
func NewHistory(interval, retention time.Duration) *History {
	if interval <= 0 {
		return nil
	}
	n := int(retention / interval)
	if n < 2 {
		n = 2
	}
	if n > historyMaxPoints {
		n = historyMaxPoints
	}
	return &History{
		interval: interval,
		points:   make([]HistoryPoint, n),
		now:      time.Now,
	}
}

// Interval returns the sampling resolution (0 on nil).
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// Len returns the number of valid points currently held.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Total returns the lifetime number of samples recorded.
func (h *History) Total() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// SetNow overrides the clock (tests). Not synchronized; set before use.
func (h *History) SetNow(now func() time.Time) {
	if h == nil {
		return
	}
	h.now = now
}

// Record appends one sample stamped with the current time, overwriting
// the oldest point once the ring is full. No-op on nil.
func (h *History) Record(snap MetricsSnapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.points[h.next] = HistoryPoint{AtNS: h.now().UnixNano(), Snap: snap}
	h.next = (h.next + 1) % len(h.points)
	if h.count < len(h.points) {
		h.count++
	}
	h.total++
}

// Dump copies out the points newer than window ago (0 = everything
// held), oldest-first, keeping at most maxPoints of the newest ones
// (0 = no cap). The copy shares snapshot slices with the ring — callers
// must treat dumps as read-only, which every consumer does.
func (h *History) Dump(window time.Duration, maxPoints int) HistoryDump {
	if h == nil {
		return HistoryDump{Schema: MetricsSchemaVersion}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	d := HistoryDump{Schema: MetricsSchemaVersion, IntervalNS: int64(h.interval)}
	cutoff := int64(0)
	if window > 0 {
		cutoff = h.now().Add(-window).UnixNano()
	}
	start := h.next - h.count
	if start < 0 {
		start += len(h.points)
	}
	for i := 0; i < h.count; i++ {
		p := h.points[(start+i)%len(h.points)]
		if p.AtNS < cutoff {
			continue
		}
		d.Points = append(d.Points, p)
	}
	if maxPoints > 0 && len(d.Points) > maxPoints {
		d.Points = d.Points[len(d.Points)-maxPoints:]
	}
	return d
}

// Span returns the wall-clock distance between the dump's oldest and
// newest points (0 with fewer than 2 points).
func (d HistoryDump) Span() time.Duration {
	if len(d.Points) < 2 {
		return 0
	}
	return time.Duration(d.Points[len(d.Points)-1].AtNS - d.Points[0].AtNS)
}

// Newest returns the most recent point (ok=false on an empty dump).
func (d HistoryDump) Newest() (HistoryPoint, bool) {
	if len(d.Points) == 0 {
		return HistoryPoint{}, false
	}
	return d.Points[len(d.Points)-1], true
}

// reset reports whether going from point a to point b crosses a process
// restart: the incarnation epoch changed, or (for epoch-less v1 peers)
// the monotonic uptime went backwards.
func historyReset(a, b MetricsSnapshot) bool {
	if !a.SameEpoch(b) {
		return true
	}
	return a.UptimeNS != 0 && b.UptimeNS != 0 && b.UptimeNS < a.UptimeNS
}

// Resets counts the restarts visible inside the dump.
func (d HistoryDump) Resets() int {
	n := 0
	for i := 1; i < len(d.Points); i++ {
		if historyReset(d.Points[i-1].Snap, d.Points[i].Snap) {
			n++
		}
	}
	return n
}

// Rate returns the average per-second increase of the named counter
// stat over the trailing window (0 = the whole dump). Restarts inside
// the window contribute the post-restart absolute value (the counter
// restarted from zero), never a negative delta. ok is false with fewer
// than two points in the window.
func (d HistoryDump) Rate(name string, window time.Duration) (perSec float64, ok bool) {
	pts := d.tail(window)
	if len(pts) < 2 {
		return 0, false
	}
	inc := int64(0)
	prev, prevOK := pts[0].Snap.Stat(name)
	for i := 1; i < len(pts); i++ {
		cur, curOK := pts[i].Snap.Stat(name)
		if !curOK {
			continue
		}
		switch {
		case historyReset(pts[i-1].Snap, pts[i].Snap) || (prevOK && cur < prev):
			inc += cur
		case prevOK && cur > prev:
			inc += cur - prev
		}
		prev, prevOK = cur, true
	}
	elapsed := pts[len(pts)-1].AtNS - pts[0].AtNS
	if elapsed <= 0 {
		return 0, false
	}
	return float64(inc) / (float64(elapsed) / 1e9), true
}

// RateSeries returns the per-interval rate of the named stat, oldest
// first — one value per adjacent point pair, for sparklines. Reset
// intervals report the post-restart absolute value over the gap.
func (d HistoryDump) RateSeries(name string) []float64 {
	if len(d.Points) < 2 {
		return nil
	}
	out := make([]float64, 0, len(d.Points)-1)
	for i := 1; i < len(d.Points); i++ {
		a, b := d.Points[i-1], d.Points[i]
		av, _ := a.Snap.Stat(name)
		bv, bok := b.Snap.Stat(name)
		dt := float64(b.AtNS-a.AtNS) / 1e9
		if !bok || dt <= 0 {
			out = append(out, 0)
			continue
		}
		delta := bv - av
		if historyReset(a.Snap, b.Snap) || delta < 0 {
			delta = bv
		}
		out = append(out, float64(delta)/dt)
	}
	return out
}

// WindowHist returns the delta of the named quantile histogram over the
// trailing window: newest point minus the best baseline at or before
// the window start (the same rule as the SLO engine's burn windows).
// A restart between baseline and newest falls back to the newest
// cumulative snapshot, stamped reset=true. ok is false when the dump
// never saw the histogram.
func (d HistoryDump) WindowHist(name string, window time.Duration) (delta QHistSnapshot, reset bool, ok bool) {
	if len(d.Points) == 0 {
		return QHistSnapshot{}, false, false
	}
	newest := d.Points[len(d.Points)-1]
	cur, curOK := newest.Snap.Hist(name)
	if !curOK {
		return QHistSnapshot{}, false, false
	}
	var base QHistSnapshot
	basePoint := -1
	if window > 0 {
		cutoff := newest.AtNS - int64(window)
		for i := len(d.Points) - 2; i >= 0; i-- {
			if d.Points[i].AtNS <= cutoff {
				basePoint = i
				break
			}
		}
		if basePoint < 0 && d.Points[0].AtNS > cutoff {
			// Whole dump is inside the window: everything it saw counts.
			return cur, false, true
		}
	} else {
		basePoint = 0
		if len(d.Points) == 1 {
			return cur, false, true
		}
	}
	if basePoint < 0 {
		basePoint = 0
	}
	for i := basePoint + 1; i < len(d.Points); i++ {
		if historyReset(d.Points[i-1].Snap, d.Points[i].Snap) {
			return cur, true, true
		}
	}
	base, _ = d.Points[basePoint].Snap.Hist(name)
	out, subReset, err := SubtractQHist(cur, base)
	if err != nil {
		return cur, true, true
	}
	return out, subReset, true
}

// QuantileSeries returns the per-interval p-quantile of the named
// histogram in nanoseconds, oldest first (0 where an interval saw no
// observations). Reset intervals use the post-restart cumulative state.
func (d HistoryDump) QuantileSeries(name string, p float64) []float64 {
	if len(d.Points) < 2 {
		return nil
	}
	out := make([]float64, 0, len(d.Points)-1)
	for i := 1; i < len(d.Points); i++ {
		a, _ := d.Points[i-1].Snap.Hist(name)
		b, bok := d.Points[i].Snap.Hist(name)
		if !bok {
			out = append(out, 0)
			continue
		}
		if historyReset(d.Points[i-1].Snap, d.Points[i].Snap) {
			out = append(out, float64(b.Quantile(p)))
			continue
		}
		delta, _, err := SubtractQHist(b, a)
		if err != nil || delta.Count == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(delta.Quantile(p)))
	}
	return out
}

// tail returns the points within the trailing window (0 = all).
func (d HistoryDump) tail(window time.Duration) []HistoryPoint {
	if window <= 0 || len(d.Points) == 0 {
		return d.Points
	}
	cutoff := d.Points[len(d.Points)-1].AtNS - int64(window)
	for i, p := range d.Points {
		if p.AtNS >= cutoff {
			return d.Points[i:]
		}
	}
	return nil
}
