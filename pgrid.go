// Package pgrid is a self-organizing, fully decentralized access structure
// for peer-to-peer information systems — a from-scratch implementation of
// Karl Aberer's P-Grid (2002), one of the earliest DHT designs.
//
// A P-Grid partitions a binary key space over a community of peers by
// purely local, randomized pairwise interactions: no coordinator, no global
// knowledge, no reliable nodes. Every peer becomes responsible for one
// binary path of the key space and keeps, for each bit of its path, up to
// refmax references to peers on the opposite side of that bit — enough to
// route any query in O(log N) messages even when most peers are offline.
//
// This package is the public facade: build (or fabricate) a grid, publish
// and update index entries, search by key, and read with single-replica or
// majority semantics. The distributed algorithms live in internal/core; the
// simulation engines in internal/sim; everything is deterministic under an
// explicit seed.
//
// Minimal use:
//
//	g, err := pgrid.Build(pgrid.DefaultOptions(500))
//	...
//	g.Publish(pgrid.Entry{Key: pgrid.HashKey("song.mp3", 6), Name: "song.mp3", Holder: 3})
//	res, err := g.Lookup(pgrid.HashKey("song.mp3", 6), "song.mp3")
package pgrid

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/sim"
	"pgrid/internal/stats"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

// Errors returned by Grid operations.
var (
	// ErrNotFound reports that no reachable responsible peer had the entry.
	ErrNotFound = errors.New("pgrid: not found")
	// ErrUnreachable reports that no responsible peer could be reached at
	// all (routing failed, e.g. too many peers offline).
	ErrUnreachable = errors.New("pgrid: no responsible peer reachable")
	// ErrBadKey reports a key that is not a binary path.
	ErrBadKey = errors.New("pgrid: key must be a string of 0s and 1s")
)

// Options configures Build.
type Options struct {
	// Peers is the community size (≥ 2).
	Peers int
	// MaxPathLen bounds specialization depth (the paper's maxl).
	MaxPathLen int
	// RefMax bounds references per level (the paper's refmax).
	RefMax int
	// RecMax bounds exchange recursion depth (the paper's recmax; 2 is the
	// measured optimum).
	RecMax int
	// RecFanout bounds recursive exchange fan-out (0 = unbounded; 2 is the
	// paper's fix for exponential cost at refmax > 1).
	RecFanout int
	// Threshold is the construction convergence threshold as a fraction of
	// MaxPathLen (default 0.99).
	Threshold float64
	// Seed makes the build reproducible.
	Seed int64
	// Concurrent builds with parallel goroutine meetings (faster, not
	// byte-deterministic across runs).
	Concurrent bool
}

// DefaultOptions returns a balanced configuration for n peers: depth so
// that leaves hold ≈ 16 replicas, refmax 10, the optimal recursion bound.
func DefaultOptions(n int) Options {
	depth := 1
	for (1 << uint(depth+1)) <= n/16 {
		depth++
	}
	return Options{
		Peers:      n,
		MaxPathLen: depth,
		RefMax:     10,
		RecMax:     2,
		RecFanout:  2,
		Threshold:  0.99,
		Seed:       1,
	}
}

// Grid is a built P-Grid community. Its methods are safe for concurrent
// use.
type Grid struct {
	mu  sync.Mutex
	dir *directory.Directory
	cfg core.Config
	rng *rand.Rand
	tel *telemetry.Instruments
}

// SetTelemetry attaches an instrument bundle recording searches and update
// propagations performed through the facade (nil detaches; all methods
// tolerate a nil bundle at the cost of one branch).
func (g *Grid) SetTelemetry(t *telemetry.Instruments) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tel = t
}

// Build constructs a grid by running the randomized pairwise-exchange
// process until convergence.
func Build(o Options) (*Grid, error) {
	cfg := core.Config{MaxL: o.MaxPathLen, RefMax: o.RefMax, RecMax: o.RecMax, RecFanout: o.RecFanout}
	opts := sim.Options{
		N:         o.Peers,
		Config:    cfg,
		Threshold: o.Threshold,
		Seed:      o.Seed,
	}
	var (
		res sim.Result
		err error
	)
	if o.Concurrent {
		res, err = sim.BuildConcurrent(opts)
	} else {
		res, err = sim.Build(opts)
	}
	if err != nil {
		return nil, fmt.Errorf("pgrid: build: %w", err)
	}
	return &Grid{
		dir: res.Dir,
		cfg: cfg,
		rng: rand.New(rand.NewSource(o.Seed + 0x9e3779b9)),
	}, nil
}

// BuildIdeal fabricates a perfectly balanced grid without running the
// construction process: n peers over 2^depth leaves with full reference
// tables. Useful for tests and for isolating search behaviour from
// construction noise. It panics if n < 2^depth.
func BuildIdeal(n, depth, refmax int, seed int64) *Grid {
	rng := rand.New(rand.NewSource(seed))
	return &Grid{
		dir: trie.BuildIdeal(n, depth, refmax, rng),
		cfg: core.Config{MaxL: depth, RefMax: refmax, RecMax: 2, RecFanout: 2},
		rng: rng,
	}
}

// HashKey derives a uniformly distributed bits-long key from a name — the
// standard way to index arbitrary strings.
func HashKey(name string, bits int) string {
	return string(bitpath.HashKey(name, bits))
}

// TextKey derives an order- and prefix-preserving key from a string,
// enabling prefix search over text (the paper's trie extension). Beware:
// text keys inherit the text's skew.
func TextKey(s string, bits int) string {
	return string(bitpath.PrefixKey(s, bits))
}

// Entry is one index entry: peer Holder hosts an item Name indexed under
// the binary Key.
type Entry struct {
	Key     string
	Name    string
	Holder  int
	Version uint64
}

func (e Entry) internal() (store.Entry, error) {
	k, err := bitpath.Parse(e.Key)
	if err != nil {
		return store.Entry{}, fmt.Errorf("%w: %q", ErrBadKey, e.Key)
	}
	v := e.Version
	if v == 0 {
		v = 1
	}
	return store.Entry{Key: k, Name: e.Name, Holder: addr.Addr(e.Holder), Version: v}, nil
}

func external(e store.Entry) Entry {
	return Entry{Key: string(e.Key), Name: e.Name, Holder: int(e.Holder), Version: e.Version}
}

// Cost reports the message cost of an operation.
type Cost struct {
	// Messages is the number of peer-to-peer messages spent.
	Messages int
	// Replicas is the number of distinct replicas involved (reached by an
	// update, or voting in a majority read).
	Replicas int
}

// Publish inserts a new entry, spreading it over the replicas of its key
// with one breadth-first pass. Version 0 is treated as 1.
func (g *Grid) Publish(e Entry) (Cost, error) {
	se, err := e.internal()
	if err != nil {
		return Cost{}, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	res := core.Insert(g.dir, se, g.cfg.RefMax, g.rng)
	g.tel.ObserveUpdate(core.BreadthFirst.String(), res.Replicas, res.Messages)
	if res.Replicas == 0 {
		return Cost{Messages: res.Messages}, ErrUnreachable
	}
	return Cost{Messages: res.Messages, Replicas: res.Replicas}, nil
}

// Update propagates a new version of an entry using `repetition`
// breadth-first passes of breadth `recbreadth` (Section 5.2's scheme).
// Stale versions never overwrite fresher ones.
func (g *Grid) Update(e Entry, recbreadth, repetition int) (Cost, error) {
	se, err := e.internal()
	if err != nil {
		return Cost{}, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	res := core.Update(g.dir, se, recbreadth, repetition, g.rng)
	g.tel.ObserveUpdate(core.BreadthFirst.String(), res.Replicas, res.Messages)
	if res.Replicas == 0 {
		return Cost{Messages: res.Messages}, ErrUnreachable
	}
	return Cost{Messages: res.Messages, Replicas: res.Replicas}, nil
}

// SearchResult reports a successful routing.
type SearchResult struct {
	// Peer is the responsible peer found.
	Peer int
	// Path is the peer's responsibility path.
	Path string
	// Cost is the messages spent.
	Cost Cost
}

// Search routes to a peer responsible for key, starting at a random online
// peer.
func (g *Grid) Search(key string) (SearchResult, error) {
	k, err := bitpath.Parse(key)
	if err != nil {
		return SearchResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	start := g.dir.RandomOnlinePeer(g.rng)
	if start == nil {
		return SearchResult{}, ErrUnreachable
	}
	res := core.Query(g.dir, start, k, g.rng)
	g.tel.ObserveQuery(res.Found, res.Messages, res.Backtracks)
	if !res.Found {
		return SearchResult{Cost: Cost{Messages: res.Messages}}, ErrUnreachable
	}
	return SearchResult{
		Peer: int(res.Peer),
		Path: string(g.dir.Peer(res.Peer).Path()),
		Cost: Cost{Messages: res.Messages},
	}, nil
}

// Lookup reads the entry stored under (key, name) from one responsible
// replica (the paper's non-repetitive read: cheap, but may return a stale
// version after a partial update).
func (g *Grid) Lookup(key, name string) (Entry, Cost, error) {
	k, err := bitpath.Parse(key)
	if err != nil {
		return Entry{}, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	start := g.dir.RandomOnlinePeer(g.rng)
	if start == nil {
		return Entry{}, Cost{}, ErrUnreachable
	}
	res := core.ReadOnce(g.dir, start, k, name, g.rng)
	cost := Cost{Messages: res.Messages}
	if !res.Found {
		return Entry{}, cost, ErrNotFound
	}
	return external(res.Entry), cost, nil
}

// MajorityLookup reads (key, name) with the repetitive-search protocol:
// independent searches from random entry points until one version leads by
// `margin` distinct replicas. With more than half the replicas up to date
// this returns the current version with arbitrarily high probability as
// margin grows.
func (g *Grid) MajorityLookup(key, name string, margin int) (Entry, Cost, error) {
	k, err := bitpath.Parse(key)
	if err != nil {
		return Entry{}, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	res := core.MajorityRead(g.dir, k, name, core.MajorityOptions{Margin: margin}, g.rng)
	cost := Cost{Messages: res.Messages, Replicas: res.Queries}
	if !res.Found {
		return Entry{}, cost, ErrNotFound
	}
	return external(res.Entry), cost, nil
}

// PrefixSearch returns every known entry whose key starts with prefix, by
// fanning out over the covering replicas breadth-first and merging their
// leaf indexes (freshest version per name wins). With TextKey-encoded keys
// this is textual prefix search (the paper's Section 6 trie extension).
func (g *Grid) PrefixSearch(prefix string) ([]Entry, Cost, error) {
	k, err := bitpath.Parse(prefix)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, prefix)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	start := g.dir.RandomOnlinePeer(g.rng)
	if start == nil {
		return nil, Cost{}, ErrUnreachable
	}
	res := core.ReplicaSearch(g.dir, start, k, g.cfg.RefMax, g.rng)
	if len(res.Found) == 0 {
		return nil, Cost{Messages: res.Messages}, ErrUnreachable
	}
	best := make(map[string]store.Entry)
	for _, a := range res.Found {
		for _, e := range g.dir.Peer(a).Store().PrefixScan(k) {
			if old, ok := best[e.Name]; !ok || e.Version > old.Version {
				best[e.Name] = e
			}
		}
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, external(e))
	}
	sortEntries(out)
	return out, Cost{Messages: res.Messages, Replicas: len(res.Found)}, nil
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].Key < es[j-1].Key || (es[j].Key == es[j-1].Key && es[j].Name < es[j-1].Name)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// SeedIndex installs entries directly at every covering replica using
// global knowledge — an oracle for bootstrapping experiments and tests
// (real insertions go through Publish).
func (g *Grid) SeedIndex(entries ...Entry) error {
	ses := make([]store.Entry, len(entries))
	for i, e := range entries {
		se, err := e.internal()
		if err != nil {
			return err
		}
		ses[i] = se
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	core.PopulateIndex(g.dir, ses...)
	return nil
}

// SetOnlineFraction independently sets each peer online with probability p
// (the paper's availability model). Use 1 to bring everyone back.
func (g *Grid) SetOnlineFraction(p float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p >= 1 {
		g.dir.SetAllOnline(true)
		return
	}
	g.dir.SampleOnline(g.rng, p)
}

// ChurnStep advances every peer's online/offline session by one step of a
// Markov churn model with the given stationary online fraction and mean
// session length, returning the online count.
func (g *Grid) ChurnStep(onlineFraction, meanSessionSteps float64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := workload.ChurnForOnlineFraction(onlineFraction, meanSessionSteps)
	return sim.ChurnStep(g.dir, c, g.rng)
}

// Stats summarizes the grid's current shape.
type Stats struct {
	Peers        int
	Online       int
	AvgPathLen   float64
	MaxPathLen   int
	ReplicaMean  float64 // mean replica-group size over peers
	ReplicaMin   int
	ReplicaMax   int
	IndexEntries int // total index entries over all peers
}

// Stats computes a snapshot of the community.
func (g *Grid) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{Peers: g.dir.N(), Online: g.dir.OnlineCount(), AvgPathLen: g.dir.AvgPathLen()}
	h := stats.NewHistogram()
	for _, group := range g.dir.ReplicaGroups() {
		for range group {
			h.Observe(len(group))
		}
	}
	if h.Total() > 0 {
		s.ReplicaMean = h.Mean()
		bs := h.Buckets()
		s.ReplicaMin = bs[0].Value
		s.ReplicaMax = bs[len(bs)-1].Value
	}
	for _, p := range g.dir.All() {
		if l := p.PathLen(); l > s.MaxPathLen {
			s.MaxPathLen = l
		}
		s.IndexEntries += p.Store().Len()
	}
	return s
}

// Verify checks the structural invariants of the whole community (the
// reference property of Section 2). It is cheap enough to run in tests
// after any sequence of operations.
func (g *Grid) Verify() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dir.CheckInvariants()
}

// N returns the community size.
func (g *Grid) N() int { return g.dir.N() }

// Directory exposes the underlying peer directory for the experiment
// harness and the examples; it is not part of the stable API surface.
func (g *Grid) Directory() *directory.Directory { return g.dir }
