// pgridsim runs one P-Grid construction simulation and reports the
// convergence metrics of Section 5.1, optionally followed by a search
// reliability measurement (Section 5.2).
//
// Examples:
//
//	pgridsim -n 500 -maxl 6 -refmax 1 -recmax 0
//	pgridsim -n 20000 -maxl 10 -refmax 20 -concurrent -searches 10000 -online 0.3
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/experiments"
	"pgrid/internal/health"
	"pgrid/internal/node"
	"pgrid/internal/sim"
	"pgrid/internal/stats"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/trie"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgridsim: ")

	var (
		n          = flag.Int("n", 500, "number of peers")
		maxl       = flag.Int("maxl", 6, "maximal path length")
		refmax     = flag.Int("refmax", 1, "maximal references per level")
		recmax     = flag.Int("recmax", 2, "exchange recursion depth bound")
		fanout     = flag.Int("fanout", 2, "recursion fan-out bound (0 = unbounded)")
		threshold  = flag.Float64("threshold", 0.99, "convergence threshold as fraction of maxl")
		seed       = flag.Int64("seed", 1, "random seed")
		concurrent = flag.Bool("concurrent", false, "build with parallel goroutine meetings")
		searches   = flag.Int("searches", 0, "searches to run after construction (0 = skip)")
		keylen     = flag.Int("keylen", 0, "search key length (default maxl-1)")
		online     = flag.Float64("online", 0.3, "online probability during searches")
		histogram  = flag.Bool("histogram", false, "print the replica distribution histogram")
		healthRep  = flag.Bool("health", false, "probe every reference at the -online probability after construction and print the structural grid-health report")
		probeBud   = flag.Int("probe-budget", 256, "max probe messages per peer for the -health report")
		traceN     = flag.Int("trace", 0, "print this many example search routes (plus their cost analysis) after construction")
		tree       = flag.Bool("tree", false, "print the responsibility trie (small N only)")
		events     = flag.String("events", "", "write structured JSONL telemetry events to this file (the schema pgridnode -events uses)")
	)
	flag.Parse()

	var tel *telemetry.Instruments
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tel = telemetry.New(-1) // the engine is a driver, not a peer
		// Events flow through the async pipeline, as on a real node — but
		// the sim is a batch tool, so completeness beats latency: the ring
		// is deep and the drainer unthrottled, leaving drops only for
		// bursts that outrun the encoder for 64k+ events straight.
		pipe := telemetry.NewPipeline(telemetry.NewJSONLSink(f), telemetry.PipelineConfig{
			Node: -1, RingSize: 1 << 16, DrainBudget: 1,
		})
		tel.SetSink(pipe)
		defer func() {
			if err := pipe.Close(); err != nil {
				log.Printf("flushing %s: %v", *events, err)
			}
			if d := pipe.Drops(); d > 0 {
				log.Printf("%s: %d events dropped under pressure (see kind=drop records)", *events, d)
			}
		}()
	}

	opts := sim.Options{
		N:         *n,
		Config:    core.Config{MaxL: *maxl, RefMax: *refmax, RecMax: *recmax, RecFanout: *fanout},
		Threshold: *threshold,
		Seed:      *seed,
		Telemetry: tel,
	}
	build := sim.Build
	if *concurrent {
		build = sim.BuildConcurrent
	}
	res, err := build(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peers          %d\n", *n)
	fmt.Printf("config         maxl=%d refmax=%d recmax=%d fanout=%d\n", *maxl, *refmax, *recmax, *fanout)
	fmt.Printf("exchanges (e)  %d\n", res.Exchanges)
	fmt.Printf("e/N            %.2f\n", float64(res.Exchanges)/float64(*n))
	fmt.Printf("meetings       %d\n", res.Meetings)
	fmt.Printf("avg path len   %.3f (target %.3f)\n", res.AvgPathLen, *threshold*float64(*maxl))
	fmt.Printf("converged      %t\n", res.Converged)
	fmt.Printf("elapsed        %v\n", res.Elapsed)
	if err := res.Dir.CheckInvariants(); err != nil {
		log.Fatalf("INVARIANT VIOLATION: %v", err)
	}
	fmt.Printf("invariants     ok\n")

	h := stats.NewHistogram()
	for _, g := range res.Dir.ReplicaGroups() {
		for range g {
			h.Observe(len(g))
		}
	}
	fmt.Printf("replicas       mean %.2f, median %d\n", h.Mean(), h.Quantile(0.5))
	if *histogram {
		fmt.Print(h.Render(50))
	}

	if *searches > 0 {
		kl := *keylen
		if kl == 0 {
			kl = *maxl - 1
		}
		sr := experiments.SearchReliability(res.Dir, *online, *searches, kl, *refmax, *seed+1)
		experiments.RenderSearchReliability(os.Stdout, sr)
	}

	if *healthRep {
		// Transplant the built directory into networked nodes over an
		// in-process transport, knock peers offline at the -online
		// probability, and probe the survivors' references — the same
		// digest → analysis path `pgridctl crawl` runs against a real
		// community, so the two reports are directly comparable.
		tr := node.NewLocalTransport()
		nodes := make([]*node.Node, 0, *n)
		for _, p := range res.Dir.All() {
			nd := node.New(p.Addr(), opts.Config, tr, int64(p.Addr()))
			if err := nd.Peer().Restore(p.Snapshot()); err != nil {
				log.Fatal(err)
			}
			tr.Register(nd)
			nodes = append(nodes, nd)
		}
		rng := rand.New(rand.NewSource(*seed + 3))
		for _, nd := range nodes {
			if rng.Float64() >= *online {
				nd.SetOnline(false)
			}
		}
		digests := make([]health.Digest, 0, len(nodes))
		for i, nd := range nodes {
			if !nd.Online() {
				continue
			}
			node.NewProber(nd, time.Second, *probeBud, int64(i)).Tick()
			digests = append(digests, nd.Digest())
		}
		fmt.Printf("grid health (online %.2f, %d of %d peers up):\n", *online, len(digests), len(nodes))
		analysis.RenderGridReport(os.Stdout, analysis.AnalyzeGrid(digests))
	}

	if *tree {
		fmt.Print(trie.FromDirectory(res.Dir).Render())
	}

	if *traceN > 0 {
		rng := rand.New(rand.NewSource(*seed + 2))
		fmt.Println("example routes:")
		collected := make([]trace.Trace, 0, *traceN)
		for i := 0; i < *traceN; i++ {
			key := bitpath.Random(rng, *maxl)
			tr := core.QueryTraced(res.Dir, res.Dir.RandomOnlinePeer(rng), key, rng)
			// Render through the shared distributed-trace renderer
			// (trace.Render), so this output is diff-able against
			// `pgridctl trace` on a real community.
			dt := tr.ToTrace(trace.NewTraceID(rng.Uint64(), uint64(i)))
			collected = append(collected, dt)
			fmt.Printf("  %s\n", dt)
			tel.ObserveQuery(tr.Result.Found, tr.Result.Messages, tr.Result.Backtracks)
			if tel.EventsOn() {
				tel.EmitQuery(key.String(), tr.Result.Found, tr.Result.Messages, tr.Result.Backtracks)
			}
		}
		fmt.Println("route analysis:")
		analysis.RenderTraceReport(os.Stdout, analysis.AnalyzeTraces(collected, *n))
	}
}
