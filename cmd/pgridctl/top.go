package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/node"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// runTop polls a stats source and renders a refreshing terminal summary:
// request rates, per-kind latency quantiles, pool and breaker state, and
// event drops. count == 1 prints a single frame without clearing the
// screen (script-friendly); count <= 0 runs until killed. jsonOut swaps
// the terminal view for one JSON object per frame.
//
// Everything shown is computed from two consecutive snapshots of the same
// data /metrics exposes — fetch is either one node's KindStats or the
// cluster-merged view — so top works against any node, with no extra
// protocol.
func runTop(fetch func() (statMap, error), scope string, interval time.Duration, count int, jsonOut bool) {
	var prev statMap
	var prevAt time.Time
	enc := json.NewEncoder(os.Stdout)
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := fetch()
		if err != nil {
			log.Fatal(err)
		}
		now := time.Now()
		if jsonOut {
			if err := enc.Encode(topFrame(scope, now, cur, prev, now.Sub(prevAt))); err != nil {
				log.Fatal(err)
			}
		} else {
			if count != 1 {
				fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: redraw in place
			}
			renderTop(os.Stdout, scope, now, cur, prev, now.Sub(prevAt))
		}
		prev, prevAt = cur, now
	}
}

// statsReset reports whether the previous snapshot is a stale baseline
// for rate math. The primary signal is the start-epoch gauge: it changes
// exactly when a node restarts (and, in cluster mode where epochs are
// summed, when the merged peer set changes) — catching even restarts
// whose new counters overshoot the old values. Snapshots from pre-epoch
// peers (both epochs zero) fall back to the per-counter rewind check at
// each use site.
func statsReset(cur, prev statMap) bool {
	if prev == nil {
		return false
	}
	ce, pe := cur[telemetry.StatStartEpoch], prev[telemetry.StatStartEpoch]
	return (ce != 0 || pe != 0) && ce != pe
}

// topFrame builds the JSON form of one top refresh: the raw stats plus
// the derived per-second rates for every counter series (quantile and
// gauge series carry no rate). On a reset frame rates are omitted — the
// baseline is from another incarnation.
func topFrame(scope string, now time.Time, cur, prev statMap, dt time.Duration) map[string]any {
	frame := map[string]any{
		"scope": scope,
		"at":    now,
		"stats": cur,
	}
	reset := statsReset(cur, prev)
	frame["reset"] = reset
	if prev != nil && dt > 0 && !reset {
		rates := make(map[string]float64)
		for name, v := range cur {
			p, ok := prev[name]
			if !ok || v < p || !strings.Contains(name, "_total") {
				continue
			}
			rates[name] = float64(v-p) / dt.Seconds()
		}
		frame["rates"] = rates
	}
	return frame
}

// statMap is one stats snapshot: flattened series name → value.
type statMap map[string]int64

func fetchStats(tr node.Transport, id addr.Addr) (statMap, error) {
	resp, err := tr.Call(id, &wire.Message{Kind: wire.KindStats, From: addr.Nil})
	if err != nil {
		return nil, err
	}
	if resp.StatsResp == nil {
		return nil, fmt.Errorf("node %v sent no stats (response kind %v)", id, resp.Kind)
	}
	m := make(statMap, len(resp.StatsResp.Stats))
	for _, s := range resp.StatsResp.Stats {
		m[s.Name] = s.Value
	}
	return m, nil
}

func renderTop(w io.Writer, scope string, now time.Time, cur, prev statMap, dt time.Duration) {
	reset := statsReset(cur, prev)
	rate := func(name string) string {
		if prev == nil || dt <= 0 {
			return "-"
		}
		if reset || cur[name] < prev[name] {
			// The start epoch changed — the node restarted, or in cluster
			// mode the merged peer set shifted — or (pre-epoch peers only)
			// the counter went backward. Either way a delta against the
			// stale baseline would lie, so say so instead.
			return "reset"
		}
		return fmt.Sprintf("%.1f/s", float64(cur[name]-prev[name])/dt.Seconds())
	}

	fmt.Fprintf(w, "%s · %s\n", scope, now.Format("15:04:05"))
	fmt.Fprintf(w, "served %d (%s)  client %d (%s)  exchanges %d (%s)  queries %d (%s)\n",
		cur["pgrid_rpc_served_total"], rate("pgrid_rpc_served_total"),
		cur["pgrid_rpc_client_total"], rate("pgrid_rpc_client_total"),
		cur["pgrid_exchange_total"], rate("pgrid_exchange_total"),
		cur["pgrid_query_total"], rate("pgrid_query_total"))
	fmt.Fprintf(w, "errors client %d (%s)  served %d  slow %d  events dropped %d (%s)\n",
		cur["pgrid_rpc_client_errors_total"], rate("pgrid_rpc_client_errors_total"),
		cur["pgrid_rpc_served_errors_total"],
		cur["pgrid_rpc_slow_total"],
		cur["pgrid_events_dropped_total"], rate("pgrid_events_dropped_total"))
	fmt.Fprintln(w)

	renderKindTable(w, "client rpc latency", cur, prev, dt, reset,
		"pgrid_rpc_client_kind_total", "pgrid_rpc_kind_latency_ns")
	renderKindTable(w, "served rpc latency", cur, prev, dt, reset,
		"pgrid_rpc_served_kind_total", "pgrid_rpc_served_latency_ns")

	fmt.Fprintf(w, "pool   open %d  in-flight %d  queue %d  dials %d  reuses %d (%s)  acquire p50 %s p99 %s\n",
		cur["pgrid_pool_conns_open"], cur["pgrid_pool_requests_in_flight"],
		cur["pgrid_pool_queue_depth"], cur["pgrid_pool_dials_total"],
		cur["pgrid_pool_reuses_total"], rate("pgrid_pool_reuses_total"),
		ms(cur[`pgrid_pool_acquire_wait_ns{quantile="0.5"}`]),
		ms(cur[`pgrid_pool_acquire_wait_ns{quantile="0.99"}`]))
	fmt.Fprintf(w, "breakers  open %d  half-open %d  fast-fails %d  retries %d (%s)\n",
		cur["pgrid_resilience_breakers_open"], cur["pgrid_resilience_breakers_half_open"],
		cur["pgrid_resilience_breaker_fastfail_total"],
		cur["pgrid_resilience_retries_total"], rate("pgrid_resilience_retries_total"))
}

// renderKindTable prints one quantile table, kinds in wire order so rows
// keep their position between refreshes. Kinds without traffic are
// omitted.
func renderKindTable(w io.Writer, title string, cur, prev statMap, dt time.Duration, reset bool, countFamily, latFamily string) {
	type row struct {
		kind string
		n    int64
		rate string
		q    [4]string
	}
	var rows []row
	for _, kind := range wire.KindNames() {
		if strings.HasPrefix(kind, "kind(") {
			continue
		}
		n := cur[countFamily+`{kind=`+strconv.Quote(kind)+`}`]
		if n == 0 {
			continue
		}
		r := row{kind: kind, n: n, rate: "-"}
		if prev != nil && dt > 0 {
			if pn := prev[countFamily+`{kind=`+strconv.Quote(kind)+`}`]; reset || n < pn {
				r.rate = "reset" // epoch changed (or counter rewound): restart, not load
			} else {
				r.rate = fmt.Sprintf("%.1f", float64(n-pn)/dt.Seconds())
			}
		}
		for i, q := range []string{"0.5", "0.95", "0.99", "0.999"} {
			r.q[i] = ms(cur[latFamily+`{kind=`+strconv.Quote(kind)+`,quantile=`+strconv.Quote(q)+`}`])
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-22s %10s %8s %9s %9s %9s %9s\n",
		title, "count", "rate/s", "p50", "p95", "p99", "p999")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %10d %8s %9s %9s %9s %9s\n",
			r.kind, r.n, r.rate, r.q[0], r.q[1], r.q[2], r.q[3])
	}
	fmt.Fprintln(w)
}

// ms renders nanoseconds as milliseconds with enough precision for
// sub-millisecond RPCs.
func ms(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}
