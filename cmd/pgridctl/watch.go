package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/node"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// watchFrame is one refresh of `pgridctl watch -json`: the federated
// trend report plus collection metadata, emitted as one JSON object per
// frame so scripts can stream it line-by-line.
type watchFrame struct {
	Scope       string               `json:"scope"`
	At          time.Time            `json:"at"`
	Messages    int                  `json:"messages"`
	Unreachable []addr.Addr          `json:"unreachable,omitempty"`
	Report      analysis.TrendReport `json:"report"`
}

// runWatch fetches history rings — one node's, or every reachable
// peer's via the batched crawl — and renders the windowed trend view:
// sparklines for RPC rate, error rate, served p99, pool wait, and
// drops, plus anomaly findings and windowed SLO verdicts. Unlike top,
// which differences two consecutive fetches client-side, watch reads
// the server-side rings, so one frame already holds the whole window
// (count 1 is a complete report, not a baseline).
func runWatch(client *node.Client, id addr.Addr, clusterMode bool, objectives []slo.Objective, interval time.Duration, count int, jsonOut bool) {
	scope := fmt.Sprintf("node %v", id)
	if clusterMode {
		scope = fmt.Sprintf("cluster from node %v", id)
	}
	enc := json.NewEncoder(os.Stdout)
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		var (
			dumps       map[addr.Addr]telemetry.HistoryDump
			unreachable []addr.Addr
			messages    int
		)
		if clusterMode {
			res := client.CollectClusterHistory(id, 0, 0)
			dumps, unreachable, messages = res.Dumps, res.Unreachable, res.Messages
		} else {
			d, err := client.FetchHistory(id, 0, 0)
			if err != nil {
				log.Fatal(err)
			}
			dumps = map[addr.Addr]telemetry.HistoryDump{id: d}
			messages = 1
		}
		rep := analysis.AnalyzeTrends(dumps, objectives)
		if jsonOut {
			if err := enc.Encode(watchFrame{Scope: scope, At: time.Now(),
				Messages: messages, Unreachable: unreachable, Report: rep}); err != nil {
				log.Fatal(err)
			}
		} else {
			if count != 1 {
				fmt.Print("\x1b[H\x1b[2J")
			}
			fmt.Printf("watch %s · %s (%d messages)\n", scope, time.Now().Format("15:04:05"), messages)
			analysis.RenderTrendReport(os.Stdout, rep)
			for _, a := range unreachable {
				fmt.Printf("unreachable    %v\n", a)
			}
		}
		if count == 1 && rep.Peers == 0 {
			os.Exit(1)
		}
	}
}
