// pgridctl is the client for pgridnode communities: it publishes entries,
// queries the distributed index, and inspects node state over the same
// wire protocol the nodes speak among themselves.
//
//	pgridctl -peers 0=:7000,1=:7001 info 0
//	pgridctl -peers 0=:7000,1=:7001 publish 0 song.mp3 1
//	pgridctl -peers 0=:7000,1=:7001 lookup 1 song.mp3
//	pgridctl -peers 0=:7000,1=:7001 query 0 010110
//	pgridctl -peers 0=:7000,1=:7001 trace 0 010110
//
// Keys are derived from names by hashing (the same HashKey the library
// uses) unless a raw binary key is given.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/node"
	"pgrid/internal/resilience"
	"pgrid/internal/slo"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgridctl: ")

	var (
		peers     = flag.String("peers", "", "community endpoints: id=host:port,... (required)")
		keybits   = flag.Int("keybits", 8, "bits for keys hashed from names")
		timeout   = flag.Duration("timeout", 3*time.Second, "global bound on every RPC dial and roundtrip (must be > 0, or a dead peer would hang the CLI)")
		retries   = flag.Int("retries", 3, "max attempts per RPC (1 = no retries)")
		retryBase = flag.Duration("retry-base", 25*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
		codec     = flag.String("codec", "binary", "wire codec: binary (negotiated per peer, gob fallback) or gob")
		poolSize  = flag.Int("pool-size", 2, "pooled connections per peer (0 = dial per call)")
		sloSpecs  = flag.String("slo", "query:p99:5ms", "latency objectives for cluster reports: kind:pNN:threshold,... (empty disables)")
		jsonOut   = flag.Bool("json", false, "machine-readable output: top, cluster, and watch emit one JSON object per frame")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: pgridctl -peers <endpoints> <command> [args]

commands:
  info <id>                     print a node's path, references, and entry count
  query <id> <key>              route a search for a binary key, starting at node <id>
  trace <id> <key>              route one fully-sampled search and print every hop
  traces <id> [limit]           dump a node's flight recorder (recent sampled routes + cost analysis)
  publish <id> <name> <holder>  index an item (key = hash of name) at one replica via node <id>
  publishall <id> <name> <holder>  spread an item over all reachable replicas (BFS)
  lookup <id> <name>            search for an item by name, starting at node <id>
  mlookup <name>                majority read across the community (repetitive search)
  replicas <id> <key>           list all reachable peers covering a binary key
  scan <id> <key-prefix>        list all entries under a binary key prefix
  stats <id>                    dump a node's telemetry counters (the /metrics data, over the wire)
  top [-cluster] <id> [interval] [count]
                                refreshing live summary: rates, per-kind latency quantiles, pool,
                                breakers, event drops (default 2s forever; count 1 = one plain frame);
                                -cluster merges every reachable peer's metrics into one view
  audit                         fetch every node's state and verify the reference invariant
  health <id>                   print a node's replica digest and per-level reference liveness
  repair <id> [now]             print a node's self-healing repair status: rounds, per-class fault
                                and heal tallies, healthy/repairing/stuck verdict; "now" first runs
                                one repair round on the node and reports the updated status
  crawl <id>                    walk the whole community from node <id> and print the structural report
  cluster <id> [interval] [count]
                                crawl from node <id>, federate every peer's metrics snapshot, and print
                                the cluster report: merged latency quantiles, RED rollups, top-K slow and
                                erroring peers, SLO burn verdicts (default one shot; interval = refresh)
  watch [-cluster] <id> [interval] [count]
                                refreshing sparkline trends from the node's history ring: RPC rate, error
                                rate, served p99, pool wait, drops, anomaly findings, and windowed SLO
                                verdicts (default 2s forever; count 1 = one plain frame); -cluster
                                federates every reachable peer's ring via the batched crawl
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if *peers == "" || len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *timeout <= 0 {
		log.Fatalf("-timeout must be positive, got %v (an unbounded wait on a dead peer would hang forever)", *timeout)
	}

	if *retries < 1 {
		log.Fatalf("-retries must be at least 1, got %d", *retries)
	}

	if *codec != "binary" && *codec != "gob" {
		log.Fatalf("-codec %q must be binary or gob", *codec)
	}

	// Every command talks through this one transport, so the -timeout
	// bound applies to every dial and roundtrip the CLI ever makes.
	// Retries wrap around it: a CLI run is short-lived, so transient
	// blips get the retry loop but no budget and no breakers. Multi-call
	// commands (crawl, audit, mlookup) reuse pooled connections instead
	// of re-dialing each peer per request.
	pool := node.NewPoolTransport(node.PoolConfig{
		DialTimeout: *timeout,
		IOTimeout:   *timeout,
		Size:        *poolSize,
		ForceGob:    *codec == "gob",
	})
	defer pool.Close()
	var all []addr.Addr
	for _, pair := range strings.Split(*peers, ",") {
		id, ep, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			log.Fatalf("bad endpoint %q", pair)
		}
		v, err := strconv.Atoi(id)
		if err != nil {
			log.Fatalf("bad peer id %q", id)
		}
		pool.SetEndpoint(addr.Addr(v), ep)
		all = append(all, addr.Addr(v))
	}
	var tr node.Transport = resilience.Wrap(pool, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: *retries, BaseDelay: *retryBase},
		Classify: node.Classify,
		Seed:     time.Now().UnixNano(),
	})
	client := node.NewClient(tr, time.Now().UnixNano())

	cmd, args := args[0], args[1:]
	switch cmd {
	case "info":
		id := mustID(args, 0)
		resp := mustCall(tr, id, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
		info := resp.InfoResp
		fmt.Printf("node %v\n  path     %s\n  entries  %d\n  buddies  %v\n",
			info.Addr, info.Path, info.Entries, info.Buddies.Addrs)
		for i, rs := range info.Refs {
			fmt.Printf("  level %2d %v\n", i+1, rs.Addrs)
		}

	case "query":
		id := mustID(args, 0)
		key, err := bitpath.Parse(arg(args, 1))
		if err != nil {
			log.Fatal(err)
		}
		resp := mustCall(tr, id, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
			Query: &wire.QueryReq{Key: key}})
		q := resp.QueryResp
		if !q.Found {
			log.Fatalf("no responsible peer reachable for %s (%d messages)", key, q.Messages)
		}
		fmt.Printf("responsible peer %v (path %s), %d messages\n", q.Peer, q.Path, q.Messages)

	case "trace":
		id := mustID(args, 0)
		key, err := bitpath.Parse(arg(args, 1))
		if err != nil {
			log.Fatal(err)
		}
		dt, err := client.TraceQuery(id, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace %016x\n%s\n", dt.TraceID, dt)
		for _, s := range dt.Spans {
			marks := ""
			if s.Matched {
				marks += " matched"
			}
			if s.Backtracked {
				marks += " backtracked"
			}
			ref := "-"
			if s.Ref != addr.Nil {
				ref = fmt.Sprint(s.Ref)
			}
			fmt.Printf("  %v path=%s level=%d ref=%s latency=%v%s\n",
				s.Peer, s.Path, s.Level, ref, time.Duration(s.LatencyNS), marks)
		}
		if !dt.Found {
			os.Exit(1)
		}

	case "traces":
		id := mustID(args, 0)
		limit := 0
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 {
				log.Fatalf("bad limit %q", args[1])
			}
			limit = v
		}
		total, traces, err := client.FetchTraces(id, limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %v flight recorder: %d retained (of %d ever recorded)\n", id, len(traces), total)
		for _, dt := range traces {
			fmt.Printf("  %016x %s\n", dt.TraceID, dt)
		}
		if len(traces) > 0 {
			fmt.Println("route analysis:")
			analysis.RenderTraceReport(os.Stdout, analysis.AnalyzeTraces(traces, len(all)))
		}

	case "publish":
		id := mustID(args, 0)
		name := arg(args, 1)
		holder := mustID(args, 2)
		key := bitpath.HashKey(name, *keybits)
		// Route to a responsible peer, then install the entry there.
		resp := mustCall(tr, id, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
			Query: &wire.QueryReq{Key: key}})
		if !resp.QueryResp.Found {
			log.Fatalf("no responsible peer reachable for key %s", key)
		}
		target := resp.QueryResp.Peer
		entry := store.Entry{Key: key, Name: name, Holder: holder, Version: uint64(time.Now().UnixNano())}
		mustCall(tr, target, &wire.Message{Kind: wire.KindApply, From: addr.Nil,
			Apply: &wire.ApplyReq{Entry: entry}})
		fmt.Printf("published %q (key %s) at peer %v\n", name, key, target)

	case "lookup":
		id := mustID(args, 0)
		name := arg(args, 1)
		key := bitpath.HashKey(name, *keybits)
		resp := mustCall(tr, id, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
			Query: &wire.QueryReq{Key: key}})
		if !resp.QueryResp.Found {
			log.Fatalf("no responsible peer reachable for %q", name)
		}
		got := mustCall(tr, resp.QueryResp.Peer, &wire.Message{Kind: wire.KindGet, From: addr.Nil,
			Get: &wire.GetReq{Key: key, Name: name}})
		if !got.GetResp.Found {
			log.Fatalf("%q not indexed (asked peer %v)", name, resp.QueryResp.Peer)
		}
		e := got.GetResp.Entry
		fmt.Printf("%q → hosted by peer %v (key %s, version %d), %d routing messages\n",
			name, e.Holder, e.Key, e.Version, resp.QueryResp.Messages)

	case "publishall":
		id := mustID(args, 0)
		name := arg(args, 1)
		holder := mustID(args, 2)
		key := bitpath.HashKey(name, *keybits)
		entry := store.Entry{Key: key, Name: name, Holder: holder, Version: uint64(time.Now().UnixNano())}
		replicas, msgs := client.Publish([]addr.Addr{id, all[len(all)-1]}, entry, 3, 2)
		if replicas == 0 {
			log.Fatalf("no replica reachable for key %s", key)
		}
		fmt.Printf("published %q (key %s) at %d replicas, %d messages\n", name, key, replicas, msgs)

	case "mlookup":
		name := arg(args, 0)
		key := bitpath.HashKey(name, *keybits)
		res := client.MajorityRead(all, key, name, 3, 64)
		if !res.Found {
			log.Fatalf("%q not found after %d queries", name, res.Queries)
		}
		e := res.Entry
		fmt.Printf("%q → hosted by peer %v (version %d), decided after %d queries / %d messages\n",
			name, e.Holder, e.Version, res.Queries, res.Messages)

	case "replicas":
		id := mustID(args, 0)
		key, err := bitpath.Parse(arg(args, 1))
		if err != nil {
			log.Fatal(err)
		}
		res := client.ReplicaSearch(id, key, 3)
		fmt.Printf("%d covering peers reachable for %s (%d messages):\n", len(res.Found), key, res.Messages)
		for _, a := range res.Found {
			fmt.Printf("  %v\n", a)
		}

	case "scan":
		id := mustID(args, 0)
		prefix, err := bitpath.Parse(arg(args, 1))
		if err != nil {
			log.Fatal(err)
		}
		entries, msgs := client.PrefixSearch(id, prefix, 3)
		fmt.Printf("%d entries under %s (%d messages):\n", len(entries), prefix, msgs)
		for _, e := range entries {
			fmt.Printf("  %s\n", e)
		}

	case "stats":
		id := mustID(args, 0)
		resp := mustCall(tr, id, &wire.Message{Kind: wire.KindStats, From: addr.Nil})
		st := resp.StatsResp
		if st == nil {
			log.Fatalf("node %v sent no stats (response kind %v)", id, resp.Kind)
		}
		fmt.Printf("node %v telemetry (schema v%d, %d series)\n", id, st.Schema, len(st.Stats))
		for _, s := range st.Stats {
			fmt.Printf("  %-56s %d\n", s.Name, s.Value)
		}

	case "top":
		clusterMode := false
		if len(args) > 0 && args[0] == "-cluster" {
			clusterMode = true
			args = args[1:]
		}
		id := mustID(args, 0)
		interval, count := intervalCount(args, 2*time.Second, 0)
		fetch := func() (statMap, error) { return fetchStats(tr, id) }
		scope := fmt.Sprintf("node %v", id)
		if clusterMode {
			fetch = func() (statMap, error) { return fetchClusterStats(client, id) }
			scope = fmt.Sprintf("cluster from node %v", id)
		}
		runTop(fetch, scope, interval, count, *jsonOut)

	case "watch":
		clusterMode := false
		if len(args) > 0 && args[0] == "-cluster" {
			clusterMode = true
			args = args[1:]
		}
		id := mustID(args, 0)
		interval, count := intervalCount(args, 2*time.Second, 0)
		objectives, err := slo.ParseList(*sloSpecs)
		if err != nil {
			log.Fatal(err)
		}
		runWatch(client, id, clusterMode, objectives, interval, count, *jsonOut)

	case "cluster":
		id := mustID(args, 0)
		// One frame by default — the report is a diagnostic document, not
		// a dashboard; an explicit interval turns on refresh-forever.
		count := 1
		if len(args) > 1 {
			count = 0
		}
		interval, count := intervalCount(args, 2*time.Second, count)
		objectives, err := slo.ParseList(*sloSpecs)
		if err != nil {
			log.Fatal(err)
		}
		runCluster(client, id, objectives, interval, count, *jsonOut)

	case "health":
		id := mustID(args, 0)
		d, rounds, err := client.FetchHealth(id, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %v health (%d probe rounds)\n  %s\n", id, rounds, d)
		for _, lp := range d.Liveness {
			r, _ := lp.Ratio()
			fmt.Printf("  level %2d liveness %.2f (%d live / %d dead)\n", lp.Level, r, lp.Live, lp.Dead)
		}

	case "repair":
		id := mustID(args, 0)
		trigger := len(args) > 1 && args[1] == "now"
		st, err := client.FetchRepair(id, trigger)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %v repair\n", id)
		analysis.RenderRepairStatus(os.Stdout, st)

	case "crawl":
		id := mustID(args, 0)
		res := client.Crawl(id)
		fmt.Printf("crawled %d peers from node %v (%d messages)\n", len(res.Digests), id, res.Messages)
		for _, a := range res.Unreachable {
			fmt.Printf("  unreachable: %v\n", a)
		}
		rep := analysis.AnalyzeGrid(res.Digests)
		rep.AttachRepair(res.Repairs)
		analysis.RenderGridReport(os.Stdout, rep)
		if len(res.Unreachable) > 0 {
			os.Exit(1)
		}

	case "audit":
		rep := client.Audit(all)
		fmt.Printf("reachable %d/%d peers, avg depth %.2f, %d index entries\n",
			rep.Reachable, len(all), rep.AvgDepth, rep.Entries)
		for _, a := range rep.Unreachable {
			fmt.Printf("  unreachable: %v\n", a)
		}
		if len(rep.Violations) == 0 {
			fmt.Println("reference invariant: ok")
		} else {
			for _, v := range rep.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func arg(args []string, i int) string {
	if i >= len(args) {
		log.Fatalf("missing argument %d", i+1)
	}
	return args[i]
}

func mustID(args []string, i int) addr.Addr {
	v, err := strconv.Atoi(arg(args, i))
	if err != nil || v < 0 {
		log.Fatalf("bad peer id %q", arg(args, i))
	}
	return addr.Addr(v)
}

// intervalCount parses the optional [interval] [count] tail shared by the
// refreshing commands, falling back to the given defaults.
func intervalCount(args []string, interval time.Duration, count int) (time.Duration, int) {
	if len(args) > 1 {
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			log.Fatalf("bad interval %q", args[1])
		}
		interval = d
	}
	if len(args) > 2 {
		v, err := strconv.Atoi(args[2])
		if err != nil || v < 0 {
			log.Fatalf("bad count %q", args[2])
		}
		count = v
	}
	return interval, count
}

func mustCall(tr node.Transport, to addr.Addr, m *wire.Message) *wire.Message {
	resp, err := tr.Call(to, m)
	if err != nil {
		log.Fatal(err)
	}
	return resp
}
