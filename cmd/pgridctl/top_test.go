package main

import (
	"strings"
	"testing"
	"time"

	"pgrid/internal/telemetry"
)

func TestRenderTop(t *testing.T) {
	// Two synthetic snapshots 2s apart: 100 queries in the window.
	prev := statMap{
		"pgrid_rpc_served_total":                    1000,
		`pgrid_rpc_client_kind_total{kind="query"}`: 400,
	}
	cur := statMap{
		"pgrid_rpc_served_total":                                   1200,
		"pgrid_rpc_client_total":                                   520,
		"pgrid_events_dropped_total":                               3,
		"pgrid_pool_conns_open":                                    4,
		`pgrid_rpc_client_kind_total{kind="query"}`:                500,
		`pgrid_rpc_kind_latency_ns{kind="query",quantile="0.5"}`:   1_500_000,
		`pgrid_rpc_kind_latency_ns{kind="query",quantile="0.95"}`:  4_000_000,
		`pgrid_rpc_kind_latency_ns{kind="query",quantile="0.99"}`:  9_000_000,
		`pgrid_rpc_kind_latency_ns{kind="query",quantile="0.999"}`: 20_000_000,
	}
	var b strings.Builder
	renderTop(&b, "node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
	out := b.String()
	for _, want := range []string{
		"served 1200 (100.0/s)",
		"events dropped 3",
		"client rpc latency",
		"query",
		"50.0", // query rate: (500-400)/2s
		"1.500ms",
		"20.000ms",
		"open 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top frame missing %q:\n%s", want, out)
		}
	}

	// First frame (no previous snapshot): rates render as "-", not zero.
	b.Reset()
	renderTop(&b, "node 0", time.Unix(0, 0), cur, nil, 0)
	if !strings.Contains(b.String(), "served 1200 (-)") {
		t.Errorf("first frame should show - rates:\n%s", b.String())
	}
}

// TestRenderTopCounterReset pins the restart behavior: a counter going
// backward between frames marks the rate as "reset" instead of computing
// a giant negative rate from the stale baseline.
func TestRenderTopCounterReset(t *testing.T) {
	cases := []struct {
		name       string
		prev, cur  int64
		wantServed string
	}{
		{"steady", 1000, 1200, "served 1200 (100.0/s)"},
		{"restart", 1000, 50, "served 50 (reset)"},
		{"restart to zero", 1000, 0, "served 0 (reset)"},
		{"flat", 1000, 1000, "served 1000 (0.0/s)"},
	}
	for _, c := range cases {
		prev := statMap{
			"pgrid_rpc_served_total":                    c.prev,
			`pgrid_rpc_client_kind_total{kind="query"}`: c.prev,
		}
		cur := statMap{
			"pgrid_rpc_served_total":                    c.cur,
			`pgrid_rpc_client_kind_total{kind="query"}`: c.cur,
		}
		var b strings.Builder
		renderTop(&b, "node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
		if !strings.Contains(b.String(), c.wantServed) {
			t.Errorf("%s: frame missing %q:\n%s", c.name, c.wantServed, b.String())
		}
	}

	// The per-kind table resets independently too.
	prev := statMap{`pgrid_rpc_client_kind_total{kind="query"}`: 500}
	cur := statMap{`pgrid_rpc_client_kind_total{kind="query"}`: 20}
	var b strings.Builder
	renderKindTable(&b, "client rpc latency", cur, prev, 2*time.Second, false,
		"pgrid_rpc_client_kind_total", "pgrid_rpc_kind_latency_ns")
	if !strings.Contains(b.String(), "reset") {
		t.Errorf("kind table missing reset marker:\n%s", b.String())
	}
}

// TestRenderTopEpochReset pins the v2 restart signal: a changed start
// epoch marks every rate as reset even when the post-restart counters
// overshoot the old values (the case the cur < prev heuristic misses).
func TestRenderTopEpochReset(t *testing.T) {
	prev := statMap{
		telemetry.StatStartEpoch:                    1_000,
		"pgrid_rpc_served_total":                    100,
		`pgrid_rpc_client_kind_total{kind="query"}`: 50,
	}
	cur := statMap{
		telemetry.StatStartEpoch:                    2_000, // new incarnation
		"pgrid_rpc_served_total":                    900,   // overshoots the old value
		`pgrid_rpc_client_kind_total{kind="query"}`: 700,
	}
	var b strings.Builder
	renderTop(&b, "node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
	out := b.String()
	if !strings.Contains(out, "served 900 (reset)") {
		t.Errorf("overshooting restart not flagged:\n%s", out)
	}
	if strings.Contains(out, "/s)") && !strings.Contains(out, "(reset)") {
		t.Errorf("epoch reset should suppress every headline rate:\n%s", out)
	}

	// Same epoch on both sides: rates compute normally.
	cur[telemetry.StatStartEpoch] = 1_000
	b.Reset()
	renderTop(&b, "node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
	if !strings.Contains(b.String(), "served 900 (400.0/s)") {
		t.Errorf("same-epoch frame should rate normally:\n%s", b.String())
	}
}

func TestStatsReset(t *testing.T) {
	cases := []struct {
		name      string
		cur, prev statMap
		want      bool
	}{
		{"nil prev", statMap{telemetry.StatStartEpoch: 5}, nil, false},
		{"same epoch", statMap{telemetry.StatStartEpoch: 5}, statMap{telemetry.StatStartEpoch: 5}, false},
		{"changed epoch", statMap{telemetry.StatStartEpoch: 6}, statMap{telemetry.StatStartEpoch: 5}, true},
		{"pre-epoch peers", statMap{"x": 1}, statMap{"x": 2}, false},
		{"peer gained epoch", statMap{telemetry.StatStartEpoch: 5}, statMap{}, true},
	}
	for _, c := range cases {
		if got := statsReset(c.cur, c.prev); got != c.want {
			t.Errorf("%s: statsReset = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTopFrame pins the -json frame shape: raw stats always, derived
// rates only when a same-epoch baseline exists, and a reset flag that
// both replaces the rates and explains their absence.
func TestTopFrame(t *testing.T) {
	prev := statMap{telemetry.StatStartEpoch: 1, "pgrid_query_total": 10, "pgrid_pool_conns_open": 2}
	cur := statMap{telemetry.StatStartEpoch: 1, "pgrid_query_total": 30, "pgrid_pool_conns_open": 4}
	f := topFrame("node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
	if f["reset"] != false {
		t.Fatalf("steady frame marked reset: %v", f)
	}
	rates, ok := f["rates"].(map[string]float64)
	if !ok || rates["pgrid_query_total"] != 10 {
		t.Fatalf("rates = %v, want query 10/s", f["rates"])
	}
	if _, gauge := rates["pgrid_pool_conns_open"]; gauge {
		t.Fatalf("gauges must not be rated: %v", rates)
	}

	cur[telemetry.StatStartEpoch] = 2
	f = topFrame("node 0", time.Unix(0, 0), cur, prev, 2*time.Second)
	if f["reset"] != true {
		t.Fatalf("epoch change not flagged: %v", f)
	}
	if _, has := f["rates"]; has {
		t.Fatalf("reset frame must omit rates: %v", f)
	}
}

func TestWithQuantile(t *testing.T) {
	cases := [][2]string{
		{`pgrid_rpc_kind_latency_ns{kind="query"}`, `pgrid_rpc_kind_latency_ns{kind="query",quantile="0.5"}`},
		{"pgrid_pool_acquire_wait_ns", `pgrid_pool_acquire_wait_ns{quantile="0.5"}`},
	}
	for _, c := range cases {
		if got := withQuantile(c[0], "0.5"); got != c[1] {
			t.Errorf("withQuantile(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestRenderKindTableOmitsIdleKinds(t *testing.T) {
	cur := statMap{
		`pgrid_rpc_client_kind_total{kind="exchange"}`: 7,
	}
	var b strings.Builder
	renderKindTable(&b, "client rpc latency", cur, nil, 0, false,
		"pgrid_rpc_client_kind_total", "pgrid_rpc_kind_latency_ns")
	out := b.String()
	if !strings.Contains(out, "exchange") {
		t.Errorf("active kind missing:\n%s", out)
	}
	if strings.Contains(out, "query") || strings.Contains(out, "hello") {
		t.Errorf("idle kinds rendered:\n%s", out)
	}
}
