package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/node"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// runCluster crawls the community from one entry peer, federates every
// reachable node's metrics snapshot, and prints the cluster report —
// merged quantiles, RED rollups, top-K offenders, and SLO verdicts.
// count == 1 prints one plain frame (script-friendly, the default);
// count <= 0 refreshes forever at the given interval. jsonOut emits one
// JSON object per frame instead of the text report. A one-shot run
// exits nonzero when no peer answered at all.
func runCluster(client *node.Client, id addr.Addr, objectives []slo.Objective, interval time.Duration, count int, jsonOut bool) {
	enc := json.NewEncoder(os.Stdout)
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		res := client.CollectCluster(id)
		rep := analysis.AnalyzeCluster(res.Snapshots, res.Digests, res.Unreachable, objectives)
		if jsonOut {
			err := enc.Encode(map[string]any{
				"from":     id,
				"at":       time.Now(),
				"messages": res.Messages,
				"digests":  len(res.Digests),
				"report":   rep,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "pgridctl:", err)
				os.Exit(1)
			}
		} else {
			if count != 1 {
				fmt.Print("\x1b[H\x1b[2J")
				fmt.Printf("cluster from node %v · %s\n", id, time.Now().Format("15:04:05"))
			}
			fmt.Printf("collected %d peers from node %v (%d messages, %d census digests)\n",
				rep.Peers, id, res.Messages, len(res.Digests))
			analysis.RenderClusterReport(os.Stdout, rep)
		}
		if count == 1 && rep.Peers == 0 {
			os.Exit(1)
		}
	}
}

// fetchClusterStats is the cluster twin of fetchStats: it collects every
// reachable peer's snapshot, sums the flat counters, merges the quantile
// histograms bucket-wise, and re-renders the merged quantiles under the
// same series names one node would expose — so renderTop draws a whole
// community exactly like a single node.
func fetchClusterStats(client *node.Client, id addr.Addr) (statMap, error) {
	res := client.CollectCluster(id)
	if len(res.Snapshots) == 0 {
		return nil, fmt.Errorf("no peer reachable from node %v answered the metrics frame", id)
	}
	m := make(statMap)
	hists := make(map[string]telemetry.QHistSnapshot)
	for _, snap := range res.Snapshots {
		for _, s := range snap.Stats {
			m[s.Name] += s.Value
		}
		for _, h := range snap.Hists {
			merged, err := telemetry.MergeQHist(hists[h.Name], h)
			if err != nil {
				continue // geometry skew from a foreign build: skip the peer's hist
			}
			hists[h.Name] = merged
		}
	}
	for name, h := range hists {
		if h.Count == 0 {
			continue
		}
		qs := h.Quantiles(telemetry.QuantilePoints...)
		for i, q := range []string{"0.5", "0.95", "0.99", "0.999"} {
			m[withQuantile(name, q)] = qs[i]
		}
	}
	return m, nil
}

// withQuantile appends a quantile label to a possibly-already-labeled
// series name, matching how the node's own stats snapshot renders its
// histograms: `m{kind="query"}` → `m{kind="query",quantile="0.5"}`.
func withQuantile(name, q string) string {
	if len(name) > 0 && name[len(name)-1] == '}' {
		return name[:len(name)-1] + `,quantile=` + strconv.Quote(q) + `}`
	}
	return name + `{quantile=` + strconv.Quote(q) + `}`
}
