package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/health"
	"pgrid/internal/node"
	"pgrid/internal/repair"
	"pgrid/internal/resilience"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// newAdminMux builds the opt-in admin HTTP surface (-admin):
//
//	/metrics        Prometheus text exposition of the node's telemetry
//	/healthz        200 once the wire server is accepting; 503 before,
//	                and 503 while the worst per-level reference liveness
//	                sits below minLiveness (0 disables the check)
//	/debug/health   the node's replica digest: JSON by default,
//	                ?format=text for the human rendering
//	/debug/traces   the flight recorder: recent sampled query routes,
//	                JSON by default, ?format=text for the arrow rendering,
//	                ?limit=N to cap the count
//	/debug/repair   the self-healing repairer (-repair-interval): rounds,
//	                per-class fault and heal tallies, and the healthy/
//	                repairing/stuck verdict; JSON by default, ?format=text
//	                for the table ("repair disabled" without a repairer)
//	/debug/lat      per-kind RPC latency quantiles (p50/p95/p99/p999):
//	                JSON by default, ?format=text for a table
//	/debug/slow     the slow-op log (-slow-rpc): over-threshold RPCs with
//	                their span context, JSON or ?format=text
//	/debug/slo      the burn-rate engine (-slo): per-objective budget burn
//	                over the 5m and 1h windows with breach verdicts, JSON
//	                or ?format=text
//	/debug/history  the metrics history ring (-history-interval): the raw
//	                windowed snapshot series as JSON, or ?format=text for
//	                the sparkline trend rendering; ?window=30s narrows the
//	                span, ?limit=N caps the points returned
//	/debug/breakers the per-peer circuit breakers of the outgoing
//	                transport: JSON by default, ?format=text for a table
//	/debug/vars     expvar (includes the pgrid counter snapshot)
//	/debug/pprof/   the standard pprof handlers
//
// The mux is self-contained (nothing is registered on
// http.DefaultServeMux), so tests can build several independent instances.
// rt may be nil (a test without the resilient transport); /debug/breakers
// then reports an empty set. slowRec may be nil (no -slow-rpc threshold);
// /debug/slow then reports an empty log. eng may be nil (no -slo
// objectives); /debug/slo then reports an empty report. hist may be nil
// (no -history-interval); /debug/history then reports an empty dump.
func newAdminMux(n *node.Node, tel *telemetry.Instruments, serving *atomic.Bool, minLiveness float64, rt *resilience.ResilientTransport, slowRec *trace.Recorder, eng *slo.Engine, hist *telemetry.History) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		tel.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !serving.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		// Readiness follows the worst level: one fully-stale level makes
		// the node unable to route past it, however healthy the rest is.
		// Before the first probe round there is no data and no verdict.
		if minLiveness > 0 {
			if worst, ok := health.MinLevelRatio(n.HealthTracker().Snapshot()); ok && worst < minLiveness {
				http.Error(w, fmt.Sprintf("degraded: worst level liveness %.2f < %.2f", worst, minLiveness),
					http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintf(w, "ok path=%s entries=%d\n", n.Path(), n.Store().Len())
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		d := n.Digest()
		rounds := n.HealthTracker().Rounds()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%s rounds=%d\n", d, rounds)
			for _, lp := range d.Liveness {
				ratio, _ := lp.Ratio()
				fmt.Fprintf(w, "level %2d liveness %.2f (%d live / %d dead)\n",
					lp.Level, ratio, lp.Live, lp.Dead)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Digest health.Digest `json:"digest"`
			Rounds int64         `json:"rounds"`
		}{d, rounds})
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		rec := n.Recorder()
		traces := rec.Snapshot(limit)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range traces {
				fmt.Fprintf(w, "%016x %s\n", t.TraceID, t)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Total  uint64        `json:"total"`
			Traces []trace.Trace `json:"traces"`
		}{rec.Total(), traces})
	})
	mux.HandleFunc("/debug/repair", func(w http.ResponseWriter, r *http.Request) {
		st := n.Repairer().Status()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			analysis.RenderRepairStatus(w, st)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Repair repair.Status `json:"repair"`
		}{st})
	})
	mux.HandleFunc("/debug/lat", func(w http.ResponseWriter, r *http.Request) {
		report := tel.LatencyReport()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeLatencyTable(w, report)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Latencies []telemetry.LatencySummary `json:"latencies"`
		}{report})
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		slow := slowRec.Snapshot(limit)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range slow {
				for _, sp := range t.Spans {
					fmt.Fprintf(w, "%016x key=%s peer=%d %.3fms\n",
						t.TraceID, t.Key, sp.Peer, float64(sp.LatencyNS)/1e6)
				}
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Total uint64        `json:"total"`
			Slow  []trace.Trace `json:"slow"`
		}{slowRec.Total(), slow})
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		report := eng.Report()
		if report == nil {
			report = []slo.Status{}
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeSLOTable(w, report)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Objectives []slo.Status `json:"objectives"`
		}{report})
	})
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		var window time.Duration
		if s := r.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d < 0 {
				http.Error(w, "bad window", http.StatusBadRequest)
				return
			}
			window = d
		}
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		dump := hist.Dump(window, limit) // nil-safe: empty schema-stamped dump
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			analysis.RenderTrendReport(w, analysis.AnalyzeTrends(
				map[addr.Addr]telemetry.HistoryDump{n.Addr(): dump}, nil))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			History telemetry.HistoryDump `json:"history"`
		}{dump})
	})
	mux.HandleFunc("/debug/breakers", func(w http.ResponseWriter, r *http.Request) {
		views := []resilience.BreakerView{}
		if rt != nil {
			views = rt.Breakers()
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%-6s %-9s %6s %6s %s\n", "peer", "state", "fails", "opens", "retry_at")
			for _, v := range views {
				until := "-"
				if !v.Until.IsZero() {
					until = v.Until.Format("15:04:05.000")
				}
				fmt.Fprintf(w, "%-6v %-9s %6d %6d %s\n", v.Peer, v.State, v.Fails, v.Opens, until)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Breakers []resilience.BreakerView `json:"breakers"`
		}{views})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeLatencyTable renders a latency report as an aligned text table with
// quantiles in milliseconds.
func writeLatencyTable(w io.Writer, report []telemetry.LatencySummary) {
	fmt.Fprintf(w, "%-7s %-14s %10s %10s %10s %10s %10s\n",
		"scope", "kind", "count", "p50_ms", "p95_ms", "p99_ms", "p999_ms")
	for _, s := range report {
		fmt.Fprintf(w, "%-7s %-14s %10d %10.3f %10.3f %10.3f %10.3f\n",
			s.Scope, s.Kind, s.Count,
			float64(s.P50)/1e6, float64(s.P95)/1e6, float64(s.P99)/1e6, float64(s.P999)/1e6)
	}
}

// writeSLOTable renders the burn-rate report as an aligned text table:
// one row per objective and window.
func writeSLOTable(w io.Writer, report []slo.Status) {
	fmt.Fprintf(w, "%-24s %-6s %10s %10s %8s %10s %s\n",
		"objective", "window", "good", "total", "bad%", "burn", "verdict")
	for _, s := range report {
		verdict := "ok"
		if s.Breached {
			verdict = "BREACHED"
		}
		for _, wb := range s.Windows {
			mark := ""
			if wb.Exceeded {
				mark = " !"
			}
			fmt.Fprintf(w, "%-24s %-6s %10d %10d %8.2f %10.2f %s%s\n",
				s.Spec, wb.Window, wb.Good, wb.Total, 100*wb.BadFrac, wb.Burn, verdict, mark)
		}
	}
}

// expvar.Publish panics on duplicate names, and its registry is global, so
// the published variable reads through an atomic pointer that later
// instances (tests build several) swap to their own bundle.
var (
	expvarTel  atomic.Pointer[telemetry.Instruments]
	expvarOnce sync.Once
)

// publishExpvar exposes tel's counter snapshot as the expvar "pgrid" map.
func publishExpvar(tel *telemetry.Instruments) {
	expvarTel.Store(tel)
	expvarOnce.Do(func() {
		expvar.Publish("pgrid", expvar.Func(func() any {
			out := make(map[string]int64)
			for _, s := range expvarTel.Load().Registry().Snapshot() {
				out[s.Name] = s.Value
			}
			return out
		}))
	})
}
