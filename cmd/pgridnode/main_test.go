package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/core"
	"pgrid/internal/health"
	"pgrid/internal/node"
	"pgrid/internal/repair"
	"pgrid/internal/resilience"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

func TestParseEndpoints(t *testing.T) {
	cases := []struct {
		name    string
		inline  string
		file    string // written to a temp file when non-empty
		want    map[addr.Addr]string
		wantErr bool
	}{
		{
			name:   "inline with spaces",
			inline: "0=127.0.0.1:7000, 1=127.0.0.1:7001 ,2=host:99",
			want:   map[addr.Addr]string{0: "127.0.0.1:7000", 1: "127.0.0.1:7001", 2: "host:99"},
		},
		{
			name: "file with LF lines",
			file: "0=:7000\n1=:7001\n",
			want: map[addr.Addr]string{0: ":7000", 1: ":7001"},
		},
		{
			name: "file with CRLF lines",
			file: "0=:7000\r\n1=:7001\r\n",
			want: map[addr.Addr]string{0: ":7000", 1: ":7001"},
		},
		{
			name: "trailing blank lines",
			file: "0=:7000\n1=:7001\n\n\n",
			want: map[addr.Addr]string{0: ":7000", 1: ":7001"},
		},
		{
			name: "full-line and trailing comments",
			file: "# community alpha\n0=:7000 # seed node\n\n1=:7001\n",
			want: map[addr.Addr]string{0: ":7000", 1: ":7001"},
		},
		{
			name: "comment-only file",
			file: "# nothing here\n",

			wantErr: true,
		},
		{name: "empty", inline: "", wantErr: true},
		{name: "no equals", inline: "noequals", wantErr: true},
		{name: "non-numeric id", inline: "x=:7000", wantErr: true},
		{name: "negative id", inline: "-1=:7000", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := ""
			if tc.file != "" {
				path = filepath.Join(t.TempDir(), "peers")
				if err := os.WriteFile(path, []byte(tc.file), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, err := parseEndpoints(tc.inline, path)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseEndpoints(%q) accepted, got %v", tc.inline+tc.file, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for a, ep := range tc.want {
				if got[a] != ep {
					t.Errorf("endpoint[%v] = %q, want %q", a, got[a], ep)
				}
			}
		})
	}
}

func TestParseEndpointsMissingFile(t *testing.T) {
	if _, err := parseEndpoints("", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMixSeed(t *testing.T) {
	// Nodes launched in the same nanosecond must not share seeds, and the
	// mix must spread the id over more than the high bits.
	now := time.Now().UnixNano()
	seen := make(map[int64]bool)
	for id := 0; id < 100; id++ {
		s := mixSeed(now, id)
		if s == 0 || seen[s] {
			t.Fatalf("id %d: seed %d duplicated or zero", id, s)
		}
		seen[s] = true
		if low := uint32(mixSeed(now, id)) == uint32(mixSeed(now, id+1)); low {
			t.Fatalf("id %d: low 32 bits collide with id %d", id, id+1)
		}
	}
	if mixSeed(1, 0) != mixSeed(1, 0) {
		t.Error("mixSeed is not deterministic")
	}
}

// testNode builds a single-node community with telemetry, no network.
func testNode(t *testing.T) (*node.Node, *telemetry.Instruments) {
	t.Helper()
	tr := node.NewLocalTransport()
	tel := telemetry.New(0)
	cfg := core.Config{MaxL: 4, RefMax: 3, RecMax: 2, RecFanout: 2}
	n := node.New(0, cfg, tr, 1)
	n.SetTelemetry(tel)
	tr.Register(n)
	return n, tel
}

func TestAdminMetricsEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	scrape := func() (string, string) {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := scrape()
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Errorf("Content-Type = %q, want %q", ctype, want)
	}
	for _, family := range []string{
		"# TYPE pgrid_exchange_total counter",
		"# TYPE pgrid_query_hops histogram",
		"pgrid_rpc_served_total 0",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("metrics output missing %q", family)
		}
	}

	// Counters must be monotone across scrapes while traffic flows.
	value := func(body, name string) string {
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				return rest
			}
		}
		t.Fatalf("metric %s not found", name)
		return ""
	}
	if got := value(body, "pgrid_rpc_served_total"); got != "0" {
		t.Errorf("pgrid_rpc_served_total = %s before any traffic", got)
	}
	tel.ServedRPC("query")
	tel.ServedRPC("exchange")
	body2, _ := scrape()
	if got := value(body2, "pgrid_rpc_served_total"); got != "2" {
		t.Errorf("pgrid_rpc_served_total = %s after 2 served RPCs", got)
	}
	tel.ServedRPC("query")
	body3, _ := scrape()
	if got := value(body3, "pgrid_rpc_served_total"); got != "3" {
		t.Errorf("pgrid_rpc_served_total = %s after 3 served RPCs (not monotone?)", got)
	}
}

func TestAdminHealthz(t *testing.T) {
	// probes[level] = (live, dead) observed before the request.
	cases := []struct {
		name        string
		serving     bool
		minLiveness float64
		probes      map[int][2]int
		wantCode    int
		wantBody    string
	}{
		{name: "not yet serving", serving: false, wantCode: http.StatusServiceUnavailable, wantBody: "starting"},
		{name: "serving, no threshold", serving: true, wantCode: http.StatusOK, wantBody: "ok path="},
		{
			name: "threshold set, no probe data yet", serving: true, minLiveness: 0.5,
			wantCode: http.StatusOK,
		},
		{
			name: "all levels above threshold", serving: true, minLiveness: 0.5,
			probes:   map[int][2]int{1: {3, 1}, 2: {4, 0}},
			wantCode: http.StatusOK,
		},
		{
			name: "one level below threshold", serving: true, minLiveness: 0.5,
			probes:   map[int][2]int{1: {4, 0}, 2: {1, 3}},
			wantCode: http.StatusServiceUnavailable, wantBody: "degraded",
		},
		{
			name: "exactly at threshold", serving: true, minLiveness: 0.5,
			probes:   map[int][2]int{1: {2, 2}},
			wantCode: http.StatusOK,
		},
		{
			name: "threshold zero disables the check", serving: true, minLiveness: 0,
			probes:   map[int][2]int{1: {0, 10}},
			wantCode: http.StatusOK,
		},
		{
			name: "fully dead level", serving: true, minLiveness: 0.25,
			probes:   map[int][2]int{1: {9, 1}, 3: {0, 2}},
			wantCode: http.StatusServiceUnavailable, wantBody: "degraded",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, tel := testNode(t)
			n.EnableHealth()
			for level, ld := range tc.probes {
				for i := 0; i < ld[0]; i++ {
					n.HealthTracker().Observe(level, true)
				}
				for i := 0; i < ld[1]; i++ {
					n.HealthTracker().Observe(level, false)
				}
			}
			serving := &atomic.Bool{}
			serving.Store(tc.serving)
			srv := httptest.NewServer(newAdminMux(n, tel, serving, tc.minLiveness, nil, nil, nil, nil))
			defer srv.Close()

			resp, err := http.Get(srv.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantCode {
				t.Errorf("status %d, want %d (body %q)", resp.StatusCode, tc.wantCode, body)
			}
			if tc.wantBody != "" && !strings.Contains(string(body), tc.wantBody) {
				t.Errorf("body %q missing %q", body, tc.wantBody)
			}
		})
	}
}

// TestAdminHealthzTransition walks one mux through the serving lifecycle.
func TestAdminHealthzTransition(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	get := func() int {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Errorf("before serving: status %d, want 503", code)
	}
	serving.Store(true)
	if code := get(); code != http.StatusOK {
		t.Errorf("while serving: status %d, want 200", code)
	}
	serving.Store(false)
	if code := get(); code != http.StatusServiceUnavailable {
		t.Errorf("after shutdown began: status %d, want 503", code)
	}
}

func TestAdminDebugHealth(t *testing.T) {
	n, tel := testNode(t)
	n.EnableHealth()
	n.HealthTracker().Observe(1, true)
	n.HealthTracker().Observe(1, true)
	n.HealthTracker().Observe(1, false)
	n.HealthTracker().RoundDone()
	serving := &atomic.Bool{}
	serving.Store(true)
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out struct {
		Digest health.Digest `json:"digest"`
		Rounds int64         `json:"rounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Digest.Addr != n.Addr() || out.Rounds != 1 {
		t.Errorf("debug/health = %+v", out)
	}
	if len(out.Digest.Liveness) != 1 || out.Digest.Liveness[0].Live != 2 || out.Digest.Liveness[0].Dead != 1 {
		t.Errorf("liveness = %+v", out.Digest.Liveness)
	}

	text, err := http.Get(srv.URL + "/debug/health?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	for _, want := range []string{"rounds=1", "level  1 liveness 0.67", "2 live / 1 dead"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text body %q missing %q", body, want)
		}
	}
}

func TestAdminRepairEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	// Without a repairer the endpoint stays up and reports disabled.
	resp, err := http.Get(srv.URL + "/debug/repair")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Repair repair.Status `json:"repair"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Repair.Enabled {
		t.Errorf("repair enabled without a repairer: %+v", out.Repair)
	}

	// With a repairer that has run a round, the JSON carries the totals
	// and the text rendering names the verdict.
	rp := node.NewRepairer(n, time.Second, node.RepairConfig{Budget: 8}, 1)
	rp.Tick()
	resp2, err := http.Get(srv.URL + "/debug/repair")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Repair.Enabled || out.Repair.Rounds != 1 {
		t.Errorf("debug/repair = %+v", out.Repair)
	}

	text, err := http.Get(srv.URL + "/debug/repair?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	for _, want := range []string{"state    healthy", "rounds   1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text body %q missing %q", body, want)
		}
	}
}

func TestAdminExpvarAndPprof(t *testing.T) {
	n, tel := testNode(t)
	publishExpvar(tel)
	serving := &atomic.Bool{}
	serving.Store(true)
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["pgrid"]; !ok {
		t.Error("expvar output missing the pgrid map")
	}

	// Re-publishing with a fresh bundle must not panic (expvar globals) and
	// must serve the new bundle's counters.
	tel2 := telemetry.New(1)
	tel2.ServedRPC("info")
	publishExpvar(tel2)
	resp2, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), "pgrid_rpc_served_total") {
		t.Error("expvar pgrid map missing counters after re-publish")
	}

	pprofResp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer pprofResp.Body.Close()
	io.Copy(io.Discard, pprofResp.Body)
	if pprofResp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", pprofResp.StatusCode)
	}
}

func TestAdminBreakersEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)

	// A resilient transport over an always-offline peer: two calls at
	// threshold 2 open the breaker, which the endpoint must then report.
	rt := resilience.Wrap(node.NewLocalTransport(), resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 1},
		Breaker:  resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		Classify: node.Classify,
		Tel:      tel,
	})
	for i := 0; i < 2; i++ {
		rt.Call(7, &wire.Message{Kind: wire.KindInfo})
	}

	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, rt, nil, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/breakers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Breakers []resilience.BreakerView `json:"breakers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Breakers) != 1 || out.Breakers[0].Peer != 7 || out.Breakers[0].State != "open" {
		t.Fatalf("breakers = %+v, want peer 7 open", out.Breakers)
	}
	if out.Breakers[0].Until.IsZero() {
		t.Error("open breaker reports no retry_at time")
	}

	text, err := http.Get(srv.URL + "/debug/breakers?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	if !strings.Contains(string(body), "open") {
		t.Errorf("text rendering missing the open breaker:\n%s", body)
	}

	// A mux without a resilient transport reports an empty set, not a 500.
	bare := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer bare.Close()
	emptyResp, err := http.Get(bare.URL + "/debug/breakers")
	if err != nil {
		t.Fatal(err)
	}
	defer emptyResp.Body.Close()
	if err := json.NewDecoder(emptyResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Breakers) != 0 {
		t.Errorf("nil transport reported breakers: %+v", out.Breakers)
	}
}

func TestAdminLatencyEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer srv.Close()

	// Feed both the client and served sides so the report carries two
	// scopes, plus the pool acquire-wait row.
	for i := 0; i < 100; i++ {
		tel.ClientRPC("query", time.Duration(i+1)*time.Millisecond, nil)
	}
	tel.ServedRPCDone("exchange", 3*time.Millisecond, false)
	tel.PoolAcquireWait(50 * time.Microsecond)

	resp, err := http.Get(srv.URL + "/debug/lat")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out struct {
		Latencies []telemetry.LatencySummary `json:"latencies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]telemetry.LatencySummary)
	for _, s := range out.Latencies {
		byKey[s.Scope+"/"+s.Kind] = s
	}
	q, ok := byKey["client/query"]
	if !ok {
		t.Fatalf("report %+v missing client/query", out.Latencies)
	}
	if q.Count != 100 {
		t.Errorf("client/query count = %d, want 100", q.Count)
	}
	// p50 of 1..100ms sits near 50ms; the histogram's relative error is
	// bounded by 1/32, leave slack for rank rounding.
	if q.P50 < 45e6 || q.P50 > 55e6 {
		t.Errorf("client/query p50 = %dns, want ~50ms", q.P50)
	}
	if q.P95 <= q.P50 || q.P999 < q.P95 {
		t.Errorf("quantiles not monotone: %+v", q)
	}
	if _, ok := byKey["served/exchange"]; !ok {
		t.Errorf("report %+v missing served/exchange", out.Latencies)
	}
	if _, ok := byKey["pool/acquire_wait"]; !ok {
		t.Errorf("report %+v missing pool/acquire_wait", out.Latencies)
	}

	text, err := http.Get(srv.URL + "/debug/lat?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	for _, want := range []string{"scope", "p999_ms", "client", "query", "served", "exchange"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text body %q missing %q", body, want)
		}
	}
}

func TestAdminSlowEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)

	rec := trace.NewRecorder(8)
	rec.Record(trace.Trace{
		TraceID: 0xabc,
		Found:   true,
		Spans:   []trace.Span{{ID: 0xabc, Peer: 3, LatencyNS: 7_500_000}},
	})
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, rec, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Total uint64        `json:"total"`
		Slow  []trace.Trace `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Slow) != 1 || out.Slow[0].TraceID != 0xabc {
		t.Fatalf("slow = %+v", out)
	}

	text, err := http.Get(srv.URL + "/debug/slow?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	if !strings.Contains(string(body), "peer=3") || !strings.Contains(string(body), "7.500ms") {
		t.Errorf("text body %q missing the slow span", body)
	}

	// Without a recorder the endpoint reports an empty log, not a panic.
	bare := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer bare.Close()
	emptyResp, err := http.Get(bare.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer emptyResp.Body.Close()
	if err := json.NewDecoder(emptyResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 0 || len(out.Slow) != 0 {
		t.Errorf("nil recorder reported traces: %+v", out)
	}
}

// TestAdminSLOEndpoint drives the burn-rate engine through an injected
// latency tail and checks the breach — with its nonzero burn — is visible
// at /debug/slo in both renderings.
func TestAdminSLOEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)

	obj, err := slo.Parse("query:p90:5ms")
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	eng := slo.NewEngine([]slo.Objective{obj}, func() time.Time { return clock })
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, eng, nil))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Healthy baseline across both windows.
	for i := 0; i < 70; i++ {
		tel.ServedRPCDone("query", time.Millisecond, false)
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	var rep struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.Unmarshal([]byte(get("/debug/slo")), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Breached {
		t.Fatalf("healthy /debug/slo = %+v", rep)
	}

	// Inject a latency tail: every request now blows the 5ms threshold.
	for i := 0; i < 70; i++ {
		for j := 0; j < 5; j++ {
			tel.ServedRPCDone("query", 80*time.Millisecond, false)
		}
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	if err := json.Unmarshal([]byte(get("/debug/slo")), &rep); err != nil {
		t.Fatal(err)
	}
	st := rep.Objectives[0]
	if !st.Breached {
		t.Fatalf("tail not breached: %+v", st)
	}
	for _, w := range st.Windows {
		if w.Burn <= 0 {
			t.Fatalf("burn not visible: %+v", st.Windows)
		}
	}
	text := get("/debug/slo?format=text")
	if !strings.Contains(text, "BREACHED") || !strings.Contains(text, "query:p9:5ms") {
		t.Fatalf("text /debug/slo = %q", text)
	}

	// Without an engine the endpoint answers an empty report, not a 500.
	bare := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer bare.Close()
	if body := get2(t, bare.URL+"/debug/slo"); !strings.Contains(body, `"objectives":[]`) {
		t.Fatalf("nil-engine /debug/slo = %q", body)
	}
}

// TestAdminHistoryEndpoint records a few samples into a history ring and
// checks /debug/history serves the raw dump as JSON, the sparkline trend
// rendering as text, honors ?window= and ?limit=, and degrades to an
// empty dump (not a 500) without a ring.
func TestAdminHistoryEndpoint(t *testing.T) {
	n, tel := testNode(t)
	serving := &atomic.Bool{}
	serving.Store(true)

	hist := telemetry.NewHistory(time.Second, time.Minute)
	clock := time.Unix(1_700_000_000, 0)
	hist.SetNow(func() time.Time { return clock })
	for i := 0; i < 4; i++ {
		tel.ServedRPC("query")
		tel.ServedRPCDone("query", 2*time.Millisecond, false)
		hist.Record(tel.MetricsSnapshot())
		clock = clock.Add(time.Second)
	}
	srv := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, hist))
	defer srv.Close()

	var out struct {
		History telemetry.HistoryDump `json:"history"`
	}
	if err := json.Unmarshal([]byte(get2(t, srv.URL+"/debug/history")), &out); err != nil {
		t.Fatal(err)
	}
	d := out.History
	if d.Schema != telemetry.MetricsSchemaVersion || d.IntervalNS != int64(time.Second) || len(d.Points) != 4 {
		t.Fatalf("dump head: schema %d interval %d points %d", d.Schema, d.IntervalNS, len(d.Points))
	}
	if rate, ok := d.Rate(telemetry.StatServedTotal, 0); !ok || rate != 1 {
		t.Fatalf("served rate over the dump = %v ok=%v, want 1/s", rate, ok)
	}
	if p, _ := d.Newest(); p.Snap.StartEpochNS == 0 {
		t.Fatal("points must carry the incarnation stamp")
	}

	if err := json.Unmarshal([]byte(get2(t, srv.URL+"/debug/history?limit=2")), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.History.Points) != 2 {
		t.Fatalf("?limit=2 returned %d points", len(out.History.Points))
	}

	text := get2(t, srv.URL+"/debug/history?format=text")
	for _, want := range []string{"trends", "rpc rate", "served p99", "▁"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering lacks %q:\n%s", want, text)
		}
	}

	if resp, err := http.Get(srv.URL + "/debug/history?window=nonsense"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window accepted: %d", resp.StatusCode)
	}

	// No ring configured: an empty schema-stamped dump, not an error.
	bare := httptest.NewServer(newAdminMux(n, tel, serving, 0, nil, nil, nil, nil))
	defer bare.Close()
	if err := json.Unmarshal([]byte(get2(t, bare.URL+"/debug/history")), &out); err != nil {
		t.Fatal(err)
	}
	if out.History.Schema != telemetry.MetricsSchemaVersion || len(out.History.Points) != 0 {
		t.Fatalf("nil-ring dump = %+v", out.History)
	}
}

func get2(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
