package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseEndpointsInline(t *testing.T) {
	got, err := parseEndpoints("0=127.0.0.1:7000, 1=127.0.0.1:7001 ,2=host:99", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "127.0.0.1:7000" || got[2] != "host:99" {
		t.Errorf("got %v", got)
	}
}

func TestParseEndpointsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers")
	if err := os.WriteFile(path, []byte("0=:7000\n1=:7001\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseEndpoints("", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != ":7001" {
		t.Errorf("got %v", got)
	}
	if _, err := parseEndpoints("", filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseEndpointsErrors(t *testing.T) {
	for _, bad := range []string{"", "noequals", "x=:7000", "-1=:7000"} {
		if _, err := parseEndpoints(bad, ""); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
