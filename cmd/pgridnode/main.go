// pgridnode runs one networked P-Grid peer over TCP.
//
// Every node needs a logical id, a listen address, and the endpoint table
// of the community (comma-separated id=host:port pairs, or a file with one
// pair per line). With -meet > 0 the node actively gossips: every interval
// it initiates an exchange with a random known peer, which is how the
// access structure self-organizes.
//
// A three-node community on one machine:
//
//	pgridnode -id 0 -listen :7000 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//	pgridnode -id 1 -listen :7001 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//	pgridnode -id 2 -listen :7002 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//
// Interrogate it with pgridctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/core"
	"pgrid/internal/node"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	var (
		id        = flag.Int("id", -1, "logical peer id (required, must appear in -peers)")
		listen    = flag.String("listen", "", "listen address, e.g. :7000 (required)")
		peers     = flag.String("peers", "", "community endpoints: id=host:port,... (required)")
		peersFile = flag.String("peers-file", "", "file with one id=host:port per line (alternative to -peers)")
		maxl      = flag.Int("maxl", 8, "maximal path length")
		refmax    = flag.Int("refmax", 5, "maximal references per level")
		recmax    = flag.Int("recmax", 2, "exchange recursion bound")
		fanout    = flag.Int("fanout", 2, "recursion fan-out bound")
		meet      = flag.Duration("meet", 500*time.Millisecond, "interval between initiated exchanges (0 = passive)")
		seed      = flag.Int64("seed", 0, "random seed (0 = derived from id and time)")
		status    = flag.Duration("status", 5*time.Second, "interval between status log lines (0 = quiet)")
		stateFile = flag.String("state", "", "persist node state to this file (load at boot, save periodically and on shutdown)")
		saveEvery = flag.Duration("save-every", 30*time.Second, "state checkpoint interval when -state is set")
		maintain  = flag.Duration("maintain", 0, "interval between reference-maintenance rounds (0 = off)")
	)
	flag.Parse()

	if *id < 0 || *listen == "" || (*peers == "" && *peersFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	endpoints, err := parseEndpoints(*peers, *peersFile)
	if err != nil {
		log.Fatalf("pgridnode: %v", err)
	}
	if _, ok := endpoints[addr.Addr(*id)]; !ok {
		log.Fatalf("pgridnode: own id %d not present in the endpoint table", *id)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano() ^ int64(*id)<<32
	}
	log.SetPrefix(fmt.Sprintf("node %d: ", *id))

	tr := node.NewTCPTransport(3 * time.Second)
	var others []addr.Addr
	for a, ep := range endpoints {
		tr.SetEndpoint(a, ep)
		if a != addr.Addr(*id) {
			others = append(others, a)
		}
	}
	cfg := core.Config{MaxL: *maxl, RefMax: *refmax, RecMax: *recmax, RecFanout: *fanout}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("pgridnode: %v", err)
	}
	n := node.New(addr.Addr(*id), cfg, tr, *seed)

	if *stateFile != "" {
		loaded, err := n.LoadStateFile(*stateFile)
		if err != nil {
			log.Fatalf("pgridnode: %v", err)
		}
		if loaded {
			log.Printf("restored state from %s: path %s, %d entries", *stateFile, n.Path(), n.Store().Len())
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pgridnode: %v", err)
	}
	srv := node.NewServer(n, ln)
	log.Printf("listening on %s, %d known peers", ln.Addr(), len(others))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *meet > 0 && len(others) > 0 {
		go node.NewGossiper(n, others, *meet, *seed+1).Run(ctx)
	}
	if *status > 0 {
		go statusLoop(ctx, n, *status)
	}
	if *stateFile != "" {
		go checkpointLoop(ctx, n, *stateFile, *saveEvery)
	}
	if *maintain > 0 {
		go maintainLoop(ctx, n, *maintain)
	}

	if err := srv.Serve(ctx); err != nil {
		log.Fatalf("pgridnode: %v", err)
	}
	if *stateFile != "" {
		if err := n.SaveStateFile(*stateFile); err != nil {
			log.Printf("final checkpoint failed: %v", err)
		}
	}
	log.Printf("shut down; final path %s", n.Path())
}

func statusLoop(ctx context.Context, n *node.Node, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			log.Printf("path=%s entries=%d", n.Path(), n.Store().Len())
		}
	}
}

func maintainLoop(ctx context.Context, n *node.Node, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !n.Online() {
				continue
			}
			if res := n.Maintain(3); res.Dropped > 0 || res.Added > 0 {
				log.Printf("maintenance: dropped %d, learned %d (%d messages)",
					res.Dropped, res.Added, res.Messages)
			}
		}
	}
}

func checkpointLoop(ctx context.Context, n *node.Node, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := n.SaveStateFile(path); err != nil {
				log.Printf("checkpoint failed: %v", err)
			}
		}
	}
}

func parseEndpoints(inline, file string) (map[addr.Addr]string, error) {
	raw := inline
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		raw = strings.ReplaceAll(strings.TrimSpace(string(b)), "\n", ",")
	}
	out := make(map[addr.Addr]string)
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, ep, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad endpoint %q (want id=host:port)", pair)
		}
		v, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad peer id %q", id)
		}
		out[addr.Addr(v)] = strings.TrimSpace(ep)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no endpoints given")
	}
	return out, nil
}
