// pgridnode runs one networked P-Grid peer over TCP.
//
// Every node needs a logical id, a listen address, and the endpoint table
// of the community (comma-separated id=host:port pairs, or a file with one
// pair per line; files may contain blank lines and # comments). With
// -meet > 0 the node actively gossips: every interval it initiates an
// exchange with a random known peer, which is how the access structure
// self-organizes.
//
// A three-node community on one machine:
//
//	pgridnode -id 0 -listen :7000 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//	pgridnode -id 1 -listen :7001 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//	pgridnode -id 2 -listen :7002 -peers 0=:7000,1=:7001,2=:7002 -meet 200ms
//
// Interrogate it with pgridctl, or give it -admin :9090 and watch
// /metrics, /healthz, /debug/health, /debug/breakers, /debug/vars, and
// /debug/pprof live. Outgoing calls go through a resilient transport:
// -retries attempts with jittered exponential backoff from -retry-base,
// globally bounded by the -retry-budget token bucket, behind per-peer
// circuit breakers (-breaker-fails, -breaker-cooldown).
// With -probe-interval the node samples its references for liveness in the
// background, which feeds the health digest, the pgrid_health_* gauges,
// and the -health-min-liveness readiness check. With -repair-interval the
// node runs the self-healing repair protocol: every round detects
// structural faults (invariant-violating or dead references, path drift,
// diverged or orphaned replicas, orphaned entries) and heals them within
// -repair-budget messages, reporting through the pgrid_repair_* series,
// /debug/repair, and `pgridctl repair`. With -events the
// node appends one JSON line per exchange/query/RPC to a file, in the same
// schema pgridsim -events writes; emission goes through an asynchronous
// in-memory pipeline so the serving hot path never blocks on the file
// (overflow is dropped and counted in pgrid_events_dropped_total). With
// -slow-rpc any outgoing call over the threshold is counted, and recorded
// with its span context into a dedicated flight recorder served at
// /debug/slow; per-kind latency quantiles are live at /debug/lat. With
// -slo the node tracks latency objectives ("query:p99:5ms,...") through a
// multi-window burn-rate engine and serves the verdicts at /debug/slo.
// With -history-interval the node samples its whole metrics snapshot into a
// fixed-memory ring (-history-window deep), served at /debug/history and to
// `pgridctl watch` over the wire; -exemplar-quantile links tail latency
// buckets to flight-recorder traces via trace-id exemplars.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/core"
	"pgrid/internal/node"
	"pgrid/internal/resilience"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

func main() {
	var (
		id        = flag.Int("id", -1, "logical peer id (required, must appear in -peers)")
		listen    = flag.String("listen", "", "listen address, e.g. :7000 (required)")
		peers     = flag.String("peers", "", "community endpoints: id=host:port,... (required)")
		peersFile = flag.String("peers-file", "", "file with one id=host:port per line (alternative to -peers)")
		maxl      = flag.Int("maxl", 8, "maximal path length")
		refmax    = flag.Int("refmax", 5, "maximal references per level")
		recmax    = flag.Int("recmax", 2, "exchange recursion bound")
		fanout    = flag.Int("fanout", 2, "recursion fan-out bound")
		meet      = flag.Duration("meet", 500*time.Millisecond, "interval between initiated exchanges (0 = passive)")
		seed      = flag.Int64("seed", 0, "random seed (0 = derived from id and time)")
		status    = flag.Duration("status", 5*time.Second, "interval between status log lines (0 = quiet)")
		stateFile = flag.String("state", "", "persist node state to this file (load at boot, save periodically and on shutdown)")
		saveEvery = flag.Duration("save-every", 30*time.Second, "state checkpoint interval when -state is set")
		maintain  = flag.Duration("maintain", 0, "interval between reference-maintenance rounds (0 = off)")
		dialTO    = flag.Duration("dial-timeout", 3*time.Second, "TCP connect timeout per outgoing call")
		ioTO      = flag.Duration("io-timeout", 3*time.Second, "request/response timeout per outgoing call, started after the dial")
		codec     = flag.String("codec", "binary", "wire codec for outgoing calls: binary (negotiated per peer, gob fallback) or gob")
		poolSize  = flag.Int("pool-size", 2, "pooled connections per peer (0 = dial per call, the legacy behaviour)")
		poolIdle  = flag.Duration("pool-idle", 60*time.Second, "close pooled connections idle this long")
		retries   = flag.Int("retries", 3, "max attempts per outgoing call (1 = no retries)")
		retryBase = flag.Duration("retry-base", 25*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
		retryBud  = flag.Float64("retry-budget", 0.1, "retry tokens earned per call; bounds retries to this fraction of call volume (0 = unlimited)")
		brkFails  = flag.Int("breaker-fails", 5, "consecutive failures that open a peer's circuit breaker (0 = breakers off)")
		brkCool   = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker waits before probing the peer again")
		probeInt  = flag.Duration("probe-interval", 0, "interval between reference-liveness probe rounds, jittered ±25% (0 = off)")
		probeBud  = flag.Int("probe-budget", 16, "max probe messages per round when -probe-interval is set")
		repairInt = flag.Duration("repair-interval", 0, "interval between self-healing repair rounds, jittered ±25% (0 = off)")
		repairBud = flag.Int("repair-budget", 64, "max repair messages per round when -repair-interval is set")
		healthMin = flag.Float64("health-min-liveness", 0, "/healthz reports 503 while the worst per-level reference liveness is below this (0 = disabled)")
		admin     = flag.String("admin", "", "admin HTTP listen address (/metrics, /healthz, /debug/{vars,pprof}); empty = off")
		events    = flag.String("events", "", "append structured JSONL telemetry events to this file")
		slowRPC   = flag.Duration("slow-rpc", 0, "count and record outgoing calls at or above this round-trip latency (0 = off)")
		sloSpecs  = flag.String("slo", "", "latency SLOs to track: kind:pNN:threshold,... e.g. query:p99:5ms (burn rates at /debug/slo; empty = off)")
		sloEvery  = flag.Duration("slo-interval", 10*time.Second, "sampling interval of the SLO burn-rate engine when -slo is set")
		traceBuf  = flag.Int("trace-buf", 256, "flight-recorder capacity in traces (0 = tracing off)")
		traceProb = flag.Float64("trace-sample", 0.01, "probability a locally issued query is sampled for distributed tracing")
		histInt   = flag.Duration("history-interval", 2*time.Second, "sampling interval of the in-memory metrics history ring served at /debug/history and over KindHistory (0 = history off)")
		histWin   = flag.Duration("history-window", 5*time.Minute, "retention of the metrics history ring when -history-interval is set")
		exemplarQ = flag.Float64("exemplar-quantile", 0.99, "latency buckets at/above this tail quantile capture trace-id exemplars linking slow buckets to flight-recorder traces (0 = off)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logJSON   = flag.Bool("log-json", false, "log in JSON instead of text")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON, *id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgridnode: %v\n", err)
		os.Exit(2)
	}
	// flushEvents drains the async event pipeline and the JSONL buffer,
	// surfacing the sink's sticky write error. Installed below when -events
	// is set; called on every exit path (including fatal) so the tail of the
	// event stream is never lost to process death.
	flushEvents := func() {}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		flushEvents()
		os.Exit(1)
	}

	if *id < 0 || *listen == "" || (*peers == "" && *peersFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	endpoints, err := parseEndpoints(*peers, *peersFile)
	if err != nil {
		fatal("bad endpoint table", err)
	}
	if _, ok := endpoints[addr.Addr(*id)]; !ok {
		fatal("configuration", fmt.Errorf("own id %d not present in the endpoint table", *id))
	}
	if *seed == 0 {
		*seed = mixSeed(time.Now().UnixNano(), *id)
	}
	logger.Info("starting", "seed", *seed)

	tel := telemetry.New(*id)
	if *exemplarQ < 0 || *exemplarQ >= 1 {
		fatal("configuration", fmt.Errorf("-exemplar-quantile %v out of [0,1)", *exemplarQ))
	}
	if *exemplarQ > 0 {
		tel.EnableExemplars(*exemplarQ)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("open events file", err)
		}
		defer f.Close()
		sink := telemetry.NewJSONLSink(f)
		pipe := telemetry.NewPipeline(sink, telemetry.PipelineConfig{Node: *id})
		tel.SetSink(pipe)
		flushEvents = func() {
			if err := pipe.Close(); err != nil {
				logger.Error("flushing events failed", "err", err)
			}
		}
	}

	if *codec != "binary" && *codec != "gob" {
		fatal("configuration", fmt.Errorf("-codec %q must be binary or gob", *codec))
	}
	pool := node.NewPoolTransport(node.PoolConfig{
		DialTimeout: *dialTO,
		IOTimeout:   *ioTO,
		Size:        *poolSize,
		IdleTimeout: *poolIdle,
		ForceGob:    *codec == "gob",
	})
	pool.SetTelemetry(tel)
	defer pool.Close()
	var others []addr.Addr
	for a, ep := range endpoints {
		pool.SetEndpoint(a, ep)
		if a != addr.Addr(*id) {
			others = append(others, a)
		}
	}
	if *retries < 1 {
		fatal("configuration", fmt.Errorf("-retries %d must be at least 1", *retries))
	}
	if *retryBud < 0 {
		fatal("configuration", fmt.Errorf("-retry-budget %v must not be negative", *retryBud))
	}
	var budget *resilience.Budget
	if *retryBud > 0 {
		budget = resilience.NewBudget(*retryBud, 0)
	}
	// The resilient layer sits between the pooled transport and the
	// instrumented one: retries, the retry budget, and per-peer breakers
	// apply to every outgoing call, and the instrument layer above counts
	// each logical call once (the resilience layer exports its own
	// pgrid_resilience_* series for the attempts underneath). A breaker
	// opening evicts the peer's pooled connections — a peer judged
	// unhealthy keeps no warm sockets, and the half-open probe decides
	// afresh on a new dial.
	rt := resilience.Wrap(pool, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: *retries, BaseDelay: *retryBase},
		Budget:   budget,
		Breaker:  resilience.BreakerConfig{Threshold: *brkFails, Cooldown: *brkCool},
		Classify: node.Classify,
		Seed:     *seed,
		Tel:      tel,
		OnPeerState: func(peer addr.Addr, from, to resilience.BreakerState) {
			if to == resilience.StateOpen {
				pool.Evict(peer)
			}
		},
	})
	cfg := core.Config{MaxL: *maxl, RefMax: *refmax, RecMax: *recmax, RecFanout: *fanout}
	if err := cfg.Validate(); err != nil {
		fatal("configuration", err)
	}
	var slowRec *trace.Recorder
	if *slowRPC > 0 {
		slowRec = trace.NewRecorder(256)
	}
	n := node.New(addr.Addr(*id), cfg, node.InstrumentTransportSlow(rt, tel, *slowRPC, slowRec), *seed)
	n.SetTelemetry(tel)
	if *traceBuf > 0 {
		n.EnableTracing(trace.NewRecorder(*traceBuf), *traceProb)
	}
	n.EnableHealth()
	if *healthMin < 0 || *healthMin > 1 {
		fatal("configuration", fmt.Errorf("-health-min-liveness %v out of [0,1]", *healthMin))
	}
	// The repairer must attach before the node starts serving (the field
	// is read by the wire handler unsynchronized); its loop starts with
	// the other background loops below.
	var repairer *node.Repairer
	if *repairInt > 0 {
		if *repairBud <= 0 {
			fatal("configuration", fmt.Errorf("-repair-budget %d must be positive", *repairBud))
		}
		repairer = node.NewRepairer(n, *repairInt, node.RepairConfig{Budget: *repairBud}, *seed+3)
	}

	if *stateFile != "" {
		loaded, err := n.LoadStateFile(*stateFile)
		if err != nil {
			fatal("load state", err)
		}
		if loaded {
			logger.Info("restored state", "file", *stateFile, "path", n.Path().String(), "entries", n.Store().Len())
		}
	}

	var hist *telemetry.History
	if *histInt > 0 {
		if *histWin < *histInt {
			fatal("configuration", fmt.Errorf("-history-window %v shorter than -history-interval %v", *histWin, *histInt))
		}
		hist = telemetry.NewHistory(*histInt, *histWin)
		n.EnableHistory(hist)
	}

	var sloEng *slo.Engine
	if *sloSpecs != "" {
		objectives, err := slo.ParseList(*sloSpecs)
		if err != nil {
			fatal("configuration", err)
		}
		if *sloEvery <= 0 {
			fatal("configuration", fmt.Errorf("-slo-interval %v must be positive", *sloEvery))
		}
		sloEng = slo.NewEngine(objectives, nil)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen", err)
	}
	srv := node.NewServer(n, ln)
	logger.Info("listening", "addr", ln.Addr().String(), "peers", len(others))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serving := &atomic.Bool{}
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal("admin listen", err)
		}
		publishExpvar(tel)
		asrv := &http.Server{Handler: newAdminMux(n, tel, serving, *healthMin, rt, slowRec, sloEng, hist)}
		go asrv.Serve(aln)
		go func() {
			<-ctx.Done()
			asrv.Close()
		}()
		logger.Info("admin listening", "addr", aln.Addr().String())
	}

	if *meet > 0 && len(others) > 0 {
		go node.NewGossiper(n, others, *meet, *seed+1).Run(ctx)
	}
	if *status > 0 {
		go statusLoop(ctx, logger, n, *status)
	}
	if *stateFile != "" {
		go checkpointLoop(ctx, logger, n, *stateFile, *saveEvery)
	}
	if *maintain > 0 {
		go maintainLoop(ctx, logger, n, *maintain)
	}
	if *probeInt > 0 {
		go node.NewProber(n, *probeInt, *probeBud, *seed+2).Run(ctx)
	}
	if *repairInt > 0 {
		go repairer.Run(ctx)
	}
	if sloEng != nil {
		go sloLoop(ctx, sloEng, tel, *sloEvery)
	}
	if hist != nil {
		go n.RunHistorySampler(ctx)
	}

	serving.Store(true)
	if err := srv.Serve(ctx); err != nil {
		fatal("serve", err)
	}
	serving.Store(false)
	if *stateFile != "" {
		if err := n.SaveStateFile(*stateFile); err != nil {
			logger.Error("final checkpoint failed", "err", err)
		}
	}
	flushEvents()
	logger.Info("shut down", "path", n.Path().String())
}

// newLogger builds the process logger: slog at the requested level, text or
// JSON, with the node id on every record.
func newLogger(level string, json bool, id int) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h).With("node", id), nil
}

// mixSeed derives the effective seed from the clock and the node id with a
// splitmix64 round (trace.Mix64, the same mixing trace ids use). The id
// perturbs the input and the mix spreads it over all 64 bits, so nodes
// launched in the same instant (a script starting a whole community) still
// get unrelated RNG streams — the previous `time ^ id<<32` left the low
// bits identical across such nodes.
func mixSeed(t int64, id int) int64 {
	return int64(trace.Mix64(uint64(t) + 0x9e3779b97f4a7c15*(uint64(id)+1)))
}

func statusLoop(ctx context.Context, logger *slog.Logger, n *node.Node, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			exchanges, queries, wireErrors := n.Telemetry().Totals()
			logger.Info("status",
				"path", n.Path().String(),
				"entries", n.Store().Len(),
				"exchanges", exchanges,
				"queries", queries,
				"wire_errors", wireErrors)
		}
	}
}

// sloLoop samples the node's metrics into the burn-rate engine. The first
// tick fires immediately so /debug/slo has a baseline before the first
// full interval elapses.
func sloLoop(ctx context.Context, eng *slo.Engine, tel *telemetry.Instruments, every time.Duration) {
	eng.Tick(tel.MetricsSnapshot())
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			eng.Tick(tel.MetricsSnapshot())
		}
	}
}

func maintainLoop(ctx context.Context, logger *slog.Logger, n *node.Node, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !n.Online() {
				continue
			}
			if res := n.Maintain(3); res.Dropped > 0 || res.Added > 0 {
				logger.Info("maintenance",
					"dropped", res.Dropped, "learned", res.Added, "messages", res.Messages)
			}
		}
	}
}

func checkpointLoop(ctx context.Context, logger *slog.Logger, n *node.Node, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := n.SaveStateFile(path); err != nil {
				logger.Error("checkpoint failed", "err", err)
			}
		}
	}
}

// parseEndpoints reads the endpoint table: id=host:port pairs separated by
// commas and/or newlines. Files may use CRLF line endings and contain blank
// lines and # comments (full-line or trailing).
func parseEndpoints(inline, file string) (map[addr.Addr]string, error) {
	raw := inline
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		raw = string(b)
	}
	out := make(map[addr.Addr]string)
	for _, line := range strings.Split(raw, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, pair := range strings.Split(line, ",") {
			pair = strings.TrimSpace(pair) // also trims the \r of CRLF files
			if pair == "" {
				continue
			}
			id, ep, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, fmt.Errorf("bad endpoint %q (want id=host:port)", pair)
			}
			v, err := strconv.Atoi(strings.TrimSpace(id))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad peer id %q", id)
			}
			out[addr.Addr(v)] = strings.TrimSpace(ep)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no endpoints given")
	}
	return out, nil
}
