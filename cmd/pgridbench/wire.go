package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/node"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

// wireReport is the machine-readable output of the wire benchmark
// (BENCH_wire.json at the repository root is regenerated with
// `go run ./cmd/pgridbench -run wire -wire-json BENCH_wire.json`).
type wireReport struct {
	Schema     string    `json:"schema"`
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Workers    int       `json:"workers"`
	RPCsPerRow int       `json:"rpcs_per_row"`
	Rows       []wireRow `json:"rows"`
}

// wireRow is one cell of the codec × transport A/B matrix. AllocsPerOp
// and BytesPerOp are whole-process deltas (client and server run in the
// same process here, so the figure is end-to-end: encode, frame, serve,
// decode). SpeedupVsGobDial is RPCsPerSec over the gob/dial baseline —
// the transport this PR replaces.
type wireRow struct {
	Codec            string  `json:"codec"`     // "gob" | "binary"
	Transport        string  `json:"transport"` // "dial" | "pooled"
	RPCs             int     `json:"rpcs"`
	Seconds          float64 `json:"seconds"`
	RPCsPerSec       float64 `json:"rpcs_per_sec"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	SpeedupVsGobDial float64 `json:"speedup_vs_gob_dial"`
}

const (
	wireWorkers = 8
	wireWarmup  = 200
	wireRPCs    = 4000
)

// wireBench runs the single-node RPC A/B: the same KindGet workload
// against one sniffing server, across every cell of
// {gob, binary} × {dial-per-call, pooled}. The gob/dial cell uses the
// actual legacy one-shot transport, so the baseline is the real pre-pool
// code path, not an emulation.
func wireBench(out io.Writer, seed int64, jsonPath string) {
	cfg := core.Config{MaxL: 8, RefMax: 5, RecMax: 2, RecFanout: 2}
	n := node.New(0, cfg, node.NewLocalTransport(), seed)
	entry := store.Entry{Key: bitpath.MustParse("10110100"), Name: "bench-item", Holder: 3, Version: 7}
	if !n.Store().Apply(entry) {
		check(fmt.Errorf("wire bench: seeding the store failed"))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := node.NewServer(n, ln)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	defer srv.Close()
	ep := ln.Addr().String()

	req := func() *wire.Message {
		return &wire.Message{Kind: wire.KindGet, From: addr.Nil,
			Get: &wire.GetReq{Key: entry.Key, Name: entry.Name}}
	}

	// measure drives rpcs calls over tr with wireWorkers goroutines and
	// returns wall-clock, whole-process alloc deltas, and the latency
	// distribution.
	measure := func(tr node.Transport, rpcs int) (seconds, allocsPerOp, bytesPerOp float64, p50, p99 time.Duration) {
		lat := make([]time.Duration, rpcs)
		var next atomic.Int64
		run := func() {
			var wg sync.WaitGroup
			for w := 0; w < wireWorkers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(rpcs) {
							return
						}
						t0 := time.Now()
						resp, err := tr.Call(0, req())
						check(err)
						if resp.GetResp == nil || !resp.GetResp.Found {
							check(fmt.Errorf("wire bench: lost the entry: %+v", resp))
						}
						lat[i] = time.Since(t0)
					}
				}()
			}
			wg.Wait()
		}

		// Warmup fills pools and negotiates codecs outside the window.
		next.Store(int64(rpcs - wireWarmup))
		run()
		next.Store(0)

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		run()
		seconds = time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rpcs)
		bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rpcs)

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50 = lat[rpcs/2]
		p99 = lat[rpcs*99/100]
		return seconds, allocsPerOp, bytesPerOp, p50, p99
	}

	type cell struct {
		codec, transport string
		make             func() (node.Transport, func())
	}
	poolCfg := func(size int, forceGob bool) node.PoolConfig {
		return node.PoolConfig{DialTimeout: 5 * time.Second, IOTimeout: 5 * time.Second,
			Size: size, ForceGob: forceGob}
	}
	cells := []cell{
		{"gob", "dial", func() (node.Transport, func()) {
			tr := node.NewTCPTransport(5 * time.Second)
			tr.SetEndpoint(0, ep)
			return tr, func() {}
		}},
		{"gob", "pooled", func() (node.Transport, func()) {
			pt := node.NewPoolTransport(poolCfg(2, true))
			pt.SetEndpoint(0, ep)
			return pt, pt.Close
		}},
		{"binary", "dial", func() (node.Transport, func()) {
			pt := node.NewPoolTransport(poolCfg(0, false))
			pt.SetEndpoint(0, ep)
			return pt, pt.Close
		}},
		{"binary", "pooled", func() (node.Transport, func()) {
			pt := node.NewPoolTransport(poolCfg(2, false))
			pt.SetEndpoint(0, ep)
			return pt, pt.Close
		}},
	}

	rows := make([]wireRow, 0, len(cells))
	var baseline float64
	for _, c := range cells {
		tr, closeTr := c.make()
		seconds, allocs, bytes, p50, p99 := measure(tr, wireRPCs)
		closeTr()
		r := wireRow{
			Codec: c.codec, Transport: c.transport, RPCs: wireRPCs,
			Seconds:     seconds,
			RPCsPerSec:  float64(wireRPCs) / seconds,
			AllocsPerOp: allocs, BytesPerOp: bytes,
			P50Micros: float64(p50) / 1e3, P99Micros: float64(p99) / 1e3,
		}
		if c.codec == "gob" && c.transport == "dial" {
			baseline = r.RPCsPerSec
		}
		r.SpeedupVsGobDial = r.RPCsPerSec / baseline
		rows = append(rows, r)
	}

	fmt.Fprintf(out, "Wire throughput — single-node KindGet over loopback TCP, %d workers, %d RPCs per cell\n",
		wireWorkers, wireRPCs)
	fmt.Fprintf(out, "%8s %8s %12s %12s %10s %10s %10s %9s\n",
		"codec", "conns", "rpcs/sec", "allocs/op", "bytes/op", "p50 µs", "p99 µs", "speedup")
	for _, r := range rows {
		fmt.Fprintf(out, "%8s %8s %12.0f %12.1f %10.0f %10.1f %10.1f %8.2fx\n",
			r.Codec, r.Transport, r.RPCsPerSec, r.AllocsPerOp, r.BytesPerOp, r.P50Micros, r.P99Micros, r.SpeedupVsGobDial)
	}
	fmt.Fprintln(out)

	if jsonPath != "" {
		rep := wireReport{
			Schema:     "pgridbench-wire/v1",
			GoVersion:  runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    wireWorkers,
			RPCsPerRow: wireRPCs,
			Rows:       rows,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		buf = append(buf, '\n')
		check(os.WriteFile(jsonPath, buf, 0o644))
		fmt.Fprintf(out, "wrote %s (%d cells)\n", jsonPath, len(rows))
	}
}
