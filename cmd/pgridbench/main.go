// pgridbench regenerates every table and figure of the paper's evaluation.
//
// By default it runs everything at the paper's parameters (the fig4/search/
// fig5/table6 group builds the 20 000-peer grid — takes a few seconds with
// the concurrent engine where the paper's Mathematica run took 10 hours).
// Select subsets with -run.
//
//	pgridbench                 # everything, paper scale
//	pgridbench -run table1,table3
//	pgridbench -run fig4 -scale 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pgrid/internal/core"
	"pgrid/internal/experiments"
	"pgrid/internal/sim"
	"pgrid/internal/telemetry"
	"pgrid/internal/trie"
)

// jsonReport is the machine-readable output of -json: per-experiment
// wall-clock and rows, so the perf trajectory of the simulator is tracked
// across PRs (BENCH_construction.json at the repository root is regenerated
// with `go run ./cmd/pgridbench -run table1,table2,table3,table4,table5,engine,telemetry
// -json BENCH_construction.json`).
type jsonReport struct {
	Schema      string           `json:"schema"`
	GoVersion   string           `json:"go_version"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Seed        int64            `json:"seed"`
	Scale       float64          `json:"scale"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Rows    any     `json:"rows,omitempty"`
}

// engineRow reports the raw simulator throughput of one engine — the
// headline metric of the construction hot path.
type engineRow struct {
	Engine         string  `json:"engine"`
	N              int     `json:"n"`
	Workers        int     `json:"workers"`
	Meetings       int64   `json:"meetings"`
	Exchanges      int64   `json:"exchanges"`
	Seconds        float64 `json:"seconds"`
	MeetingsPerSec float64 `json:"meetings_per_sec"`
	Converged      bool    `json:"converged"`
}

// telemetryRow reports the A/B cost of instrumentation on the sequential
// engine: the same build with telemetry off (nil), counters only, counters
// + a synchronous JSONL event sink writing to io.Discard, and counters +
// the async event pipeline in front of the same sink (the pgridnode
// -events configuration). OverheadPct is relative to the off row; Dropped
// counts events the pipeline shed under pressure (0 for the other modes).
type telemetryRow struct {
	Mode           string  `json:"mode"`
	N              int     `json:"n"`
	Meetings       int64   `json:"meetings"`
	Seconds        float64 `json:"seconds"`
	MeetingsPerSec float64 `json:"meetings_per_sec"`
	OverheadPct    float64 `json:"overhead_pct"`
	Dropped        int64   `json:"dropped,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgridbench: ")

	var (
		run      = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,table5,fig4,search,fig5,table6,sec6,eq3,skew,maintain,join,convergence,churnbuild,load,antientropy,engine,telemetry")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 1.0, "scale factor for the 20000-peer experiments (0 < scale ≤ 1)")
		csvDir   = flag.String("csv", "", "also write each experiment as CSV into this directory")
		jsonPath = flag.String("json", "", "write a machine-readable report (per-experiment wall-clock + rows) to this file")
		wireJSON = flag.String("wire-json", "", "with -run wire: write the codec × transport A/B matrix to this file")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 1 {
		log.Fatalf("-scale %v out of range (0,1]", *scale)
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }
	out := os.Stdout
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	// csvOut opens <dir>/<name>.csv and hands it to write; no-op without -csv.
	csvOut := func(name string, write func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		check(err)
		check(write(f))
		check(f.Close())
	}
	report := jsonReport{
		Schema:     "pgridbench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Scale:      *scale,
	}
	// record captures one experiment's wall-clock (and, for table-shaped
	// experiments, its rows) in the -json report.
	record := func(name string, start time.Time, rows any) {
		report.Experiments = append(report.Experiments, jsonExperiment{
			Name: name, Seconds: time.Since(start).Seconds(), Rows: rows,
		})
	}

	if sel("table1") {
		start := time.Now()
		rows, err := experiments.Table1(*seed)
		check(err)
		record("table1", start, rows)
		experiments.RenderConstruction(out, "Table 1 — construction cost vs community size (maxl=6, refmax=1)", rows)
		csvOut("table1", func(w *os.File) error { return experiments.ConstructionCSV(w, rows) })
	}
	if sel("table2") {
		start := time.Now()
		rows, err := experiments.Table2(*seed)
		check(err)
		record("table2", start, rows)
		experiments.RenderTable2(out, rows)
		csvOut("table2", func(w *os.File) error { return experiments.Table2CSV(w, rows) })
	}
	if sel("table3") {
		start := time.Now()
		rows, err := experiments.Table3(*seed)
		check(err)
		record("table3", start, rows)
		experiments.RenderConstruction(out, "Table 3 — construction cost vs recursion bound (N=500, maxl=6)", rows)
		csvOut("table3", func(w *os.File) error { return experiments.ConstructionCSV(w, rows) })
	}
	if sel("table4") {
		start := time.Now()
		rows, err := experiments.RefmaxSweep(*seed, 0)
		check(err)
		record("table4", start, rows)
		experiments.RenderConstruction(out, "Table 4 — refmax sweep, UNBOUNDED recursion fan-out (N=1000)", rows)
		csvOut("table4", func(w *os.File) error { return experiments.ConstructionCSV(w, rows) })
	}
	if sel("table5") {
		start := time.Now()
		rows, err := experiments.RefmaxSweep(*seed, 2)
		check(err)
		record("table5", start, rows)
		experiments.RenderConstruction(out, "Table 5 — refmax sweep, fan-out limited to 2 (N=1000)", rows)
		csvOut("table5", func(w *os.File) error { return experiments.ConstructionCSV(w, rows) })
	}
	if sel("engine") {
		// Raw simulator throughput at N=5000 (scaled): one sequential and
		// one concurrent build to convergence, meetings/sec each — the
		// numbers the tentpole optimizations move.
		n := int(5000 * *scale)
		if n < 64 {
			n = 64
		}
		cfg := core.Config{MaxL: 8, RefMax: 5, RecMax: 2, RecFanout: 2}
		start := time.Now()
		rows := make([]engineRow, 0, 2)
		seq, err := sim.Build(sim.Options{N: n, Config: cfg, Seed: *seed})
		check(err)
		rows = append(rows, engineRow{
			Engine: "sequential", N: n, Workers: 1,
			Meetings: seq.Meetings, Exchanges: seq.Exchanges,
			Seconds:        seq.Elapsed.Seconds(),
			MeetingsPerSec: float64(seq.Meetings) / seq.Elapsed.Seconds(),
			Converged:      seq.Converged,
		})
		conc, err := sim.BuildConcurrent(sim.Options{N: n, Config: cfg, Seed: *seed})
		check(err)
		rows = append(rows, engineRow{
			Engine: "concurrent", N: n, Workers: runtime.GOMAXPROCS(0),
			Meetings: conc.Meetings, Exchanges: conc.Exchanges,
			Seconds:        conc.Elapsed.Seconds(),
			MeetingsPerSec: float64(conc.Meetings) / conc.Elapsed.Seconds(),
			Converged:      conc.Converged,
		})
		record("engine", start, rows)
		fmt.Fprintf(out, "Engine throughput — construction to convergence at N=%d (maxl=%d, refmax=%d)\n", n, cfg.MaxL, cfg.RefMax)
		fmt.Fprintf(out, "%12s %8s %12s %12s %12s %14s\n", "engine", "workers", "meetings", "exchanges", "seconds", "meetings/sec")
		for _, r := range rows {
			fmt.Fprintf(out, "%12s %8d %12d %12d %12.3f %14.0f\n",
				r.Engine, r.Workers, r.Meetings, r.Exchanges, r.Seconds, r.MeetingsPerSec)
		}
		fmt.Fprintln(out)
	}

	if sel("telemetry") {
		// A/B instrumentation overhead on the sequential engine: identical
		// builds (same seed, deterministic engine) with telemetry disabled,
		// with counters attached, and with counters + a JSONL sink.
		n := int(5000 * *scale)
		if n < 64 {
			n = 64
		}
		cfg := core.Config{MaxL: 8, RefMax: 5, RecMax: 2, RecFanout: 2}
		build := func(mode string) (sim.Result, int64) {
			o := sim.Options{N: n, Config: cfg, Seed: *seed}
			var sink *telemetry.JSONLSink
			var pipe *telemetry.Pipeline
			switch mode {
			case "counters":
				o.Telemetry = telemetry.New(-1)
			case "jsonl":
				o.Telemetry = telemetry.New(-1)
				sink = telemetry.NewJSONLSink(io.Discard)
				o.Telemetry.SetSink(sink)
			case "pipeline":
				o.Telemetry = telemetry.New(-1)
				sink = telemetry.NewJSONLSink(io.Discard)
				pipe = telemetry.NewPipeline(sink, telemetry.PipelineConfig{Node: -1})
				o.Telemetry.SetSink(pipe)
			}
			res, err := sim.Build(o)
			check(err)
			var dropped int64
			if pipe != nil {
				check(pipe.Close())
				dropped = pipe.Drops()
			} else if sink != nil {
				check(sink.Flush())
			}
			return res, dropped
		}
		start := time.Now()
		modes := []string{"off", "counters", "jsonl", "pipeline"}
		// Interleave the modes round-robin and keep each mode's fastest
		// round. Noise on a shared box comes in multi-second episodes that
		// only ever slow a run down; running the modes back-to-back within
		// each round gives every mode a shot at the quiet episodes, where
		// mode-at-a-time repetition lets one mode soak up a whole bad
		// stretch and skew the ratio.
		best := make(map[string]telemetryRow, len(modes))
		for round := 0; round < 3; round++ {
			for _, mode := range modes {
				res, dropped := build(mode)
				mps := float64(res.Meetings) / res.Elapsed.Seconds()
				if b, ok := best[mode]; !ok || mps > b.MeetingsPerSec {
					best[mode] = telemetryRow{
						Mode: mode, N: n, Meetings: res.Meetings,
						Seconds:        res.Elapsed.Seconds(),
						MeetingsPerSec: mps,
						Dropped:        dropped,
					}
				}
			}
		}
		rows := make([]telemetryRow, 0, len(modes))
		base := best["off"].MeetingsPerSec
		for _, mode := range modes {
			r := best[mode]
			r.OverheadPct = 100 * (base - r.MeetingsPerSec) / base
			rows = append(rows, r)
		}
		record("telemetry", start, rows)
		fmt.Fprintf(out, "Telemetry overhead — sequential construction at N=%d\n", n)
		fmt.Fprintf(out, "%12s %12s %12s %14s %10s %9s\n", "mode", "meetings", "seconds", "meetings/sec", "overhead", "dropped")
		for _, r := range rows {
			fmt.Fprintf(out, "%12s %12d %12.3f %14.0f %9.1f%% %9d\n",
				r.Mode, r.Meetings, r.Seconds, r.MeetingsPerSec, r.OverheadPct, r.Dropped)
		}
		fmt.Fprintln(out)
	}

	// The Section 5.2 experiments share one big grid.
	if sel("fig4") || sel("search") || sel("fig5") || sel("table6") {
		p := experiments.PaperFig4Params()
		p.Seed = *seed
		p.N = int(float64(p.N) * *scale)
		if p.N < 1<<uint(p.MaxL) {
			log.Fatalf("-scale %v leaves too few peers (%d) for depth %d", *scale, p.N, p.MaxL)
		}
		fmt.Fprintf(out, "building the Section 5.2 grid (N=%d, maxl=%d, refmax=%d)...\n", p.N, p.MaxL, p.RefMax)
		start := time.Now()
		f4, err := experiments.Fig4(p)
		check(err)
		record("fig4-build", start, nil)
		if sel("fig4") {
			experiments.RenderFig4(out, f4)
			csvOut("fig4", func(w *os.File) error { return experiments.Fig4CSV(w, f4) })
		}
		if sel("search") {
			sr := experiments.SearchReliability(f4.Dir, 0.3, 10000, p.MaxL-1, p.RefMax, *seed+7)
			experiments.RenderSearchReliability(out, sr)
		}
		if sel("fig5") {
			// 30% online, as in the paper; curves up to 2000 messages.
			f4.Dir.SampleOnline(rand.New(rand.NewSource(*seed+8)), 0.3)
			curves := experiments.Fig5(f4.Dir, p.MaxL-1, 3, 20, 2000, *seed+8)
			f4.Dir.SetAllOnline(true)
			experiments.RenderFig5(out, curves)
			csvOut("fig5", func(w *os.File) error { return experiments.Fig5CSV(w, curves) })
		}
		if sel("table6") {
			t6 := experiments.PaperTable6Params()
			t6.Seed = *seed + 9
			t6.KeyLen = p.MaxL - 1
			rows := experiments.Table6(f4.Dir, t6)
			experiments.RenderTable6(out, rows)
			csvOut("table6", func(w *os.File) error { return experiments.Table6CSV(w, rows) })
		}
	}

	if sel("sec6") {
		rows, err := experiments.Sec6(experiments.PaperSec6Params())
		check(err)
		experiments.RenderSec6(out, rows)
		csvOut("sec6", func(w *os.File) error { return experiments.Sec6CSV(w, rows) })
	}
	if sel("eq3") {
		rows := experiments.Eq3ModelVsSim(6, 2000, *seed+10)
		experiments.RenderEq3(out, rows)
		csvOut("eq3", func(w *os.File) error { return experiments.Eq3CSV(w, rows) })
	}

	// Extensions (the paper's Section 6 future-work list); included in
	// "all" so the ablations regenerate alongside the paper results.
	if sel("skew") {
		p := experiments.DefaultSkewParams()
		p.Seed = *seed + 11
		rows := experiments.Skew(p)
		experiments.RenderSkew(out, rows)
		csvOut("skew", func(w *os.File) error { return experiments.SkewCSV(w, rows) })
	}
	if sel("maintain") {
		without := experiments.Maintenance(960, 5, 6, 6, 0.12, false, *seed+12)
		with := experiments.Maintenance(960, 5, 6, 6, 0.12, true, *seed+12)
		experiments.RenderMaintenance(out, with, without)
		csvOut("maintenance", func(w *os.File) error {
			return experiments.MaintenanceCSV(w, append(append([]experiments.MaintenanceRow{}, without...), with...))
		})
	}
	if sel("join") {
		rows := experiments.JoinGrowth(512, 5, 128, 6, 5, *seed+13)
		experiments.RenderJoin(out, rows)
		csvOut("join", func(w *os.File) error { return experiments.JoinCSV(w, rows) })
	}
	if sel("convergence") {
		start := time.Now()
		curves := experiments.Convergence(500, 6, []int{0, 1, 2, 4}, 100, 1_000_000, *seed+14)
		record("convergence", start, nil)
		experiments.RenderConvergence(out, curves)
		csvOut("convergence", func(w *os.File) error { return experiments.ConvergenceCSV(w, curves) })
	}
	if sel("load") {
		rng := rand.New(rand.NewSource(*seed + 16))
		d := trie.BuildIdeal(2048, 7, 5, rng)
		r := experiments.RoutingLoad(d, 7, 20000, *seed+16)
		experiments.RenderRoutingLoad(out, r)
	}
	if sel("antientropy") {
		rows, err := experiments.AntiEntropy(400, 6, 30, 10, *seed+18)
		check(err)
		experiments.RenderAntiEntropy(out, rows)
		csvOut("antientropy", func(w *os.File) error { return experiments.AntiEntropyCSV(w, rows) })
	}
	// "wire" is opt-in (not part of "all"): it spins a real TCP server and
	// benchmarks the RPC wire — gob vs binary codec, dial-per-call vs
	// pooled multiplexed connections.
	if want["wire"] {
		start := time.Now()
		wireBench(out, *seed, *wireJSON)
		record("wire", start, nil)
	}
	// "scale" is opt-in (not part of "all"): the 80k build takes minutes.
	if want["scale"] {
		start := time.Now()
		rows, err := experiments.Scale([]int{5000, 20000, 80000}, 10, *seed+17)
		check(err)
		record("scale", start, rows)
		experiments.RenderScale(out, rows)
		csvOut("scale", func(w *os.File) error { return experiments.ScaleCSV(w, rows) })
	}
	if sel("churnbuild") {
		start := time.Now()
		rows, err := experiments.ChurnBuild(400, 6, []float64{1.0, 0.7, 0.5, 0.3}, *seed+15)
		check(err)
		record("churnbuild", start, rows)
		experiments.RenderChurnBuild(out, rows)
		csvOut("churnbuild", func(w *os.File) error { return experiments.ChurnBuildCSV(w, rows) })
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		check(err)
		buf = append(buf, '\n')
		check(os.WriteFile(*jsonPath, buf, 0o644))
		fmt.Fprintf(out, "wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
