package pgrid

// One benchmark per table and figure of the paper's evaluation, plus
// per-operation micro-benchmarks. The experiment benches run the same code
// as cmd/pgridbench (which prints the paper-layout tables at full scale);
// here each reports its headline numbers as custom benchmark metrics so
// `go test -bench=. -benchmem` regenerates every result in one run.
// Expensive Section 5.2 experiments run at a reduced scale that preserves
// the paper's shape; EXPERIMENTS.md records the full-scale paper-vs-
// measured comparison produced by cmd/pgridbench.

import (
	"math/rand"
	"testing"
	"time"

	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/experiments"
	"pgrid/internal/sim"
	"pgrid/internal/store"
	"pgrid/internal/trie"
)

// --- Section 5.1: construction cost tables ---------------------------------

func BenchmarkTable1ConstructionVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		// Headline: e/N at the endpoints of the recmax=0 and recmax=2
		// series (paper: ≈ 74.6 and ≈ 25.2 at N=1000).
		b.ReportMetric(rows[4].EPerN, "e/N-rec0-N1000")
		b.ReportMetric(rows[9].EPerN, "e/N-rec2-N1000")
	}
}

func BenchmarkTable2ConstructionVsMaxl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		// Headline: growth ratio at maxl=7 (paper: 2.364 without
		// recursion, 1.573 with).
		b.ReportMetric(rows[5].Ratio, "ratio-rec0-maxl7")
		b.ReportMetric(rows[11].Ratio, "ratio-rec2-maxl7")
	}
}

func BenchmarkTable3RecmaxSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		best, bestE := 0, rows[0].Exchanges
		for _, r := range rows {
			if r.Exchanges < bestE {
				bestE = r.Exchanges
				best = r.RecMax
			}
		}
		b.ReportMetric(float64(best), "optimal-recmax") // paper: 2
		b.ReportMetric(rows[0].EPerN, "e/N-rec0")       // paper: 70.87
		b.ReportMetric(rows[2].EPerN, "e/N-rec2")       // paper: 25.47
	}
}

func BenchmarkTable4RefmaxUnbounded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RefmaxSweep(int64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		// Paper: e/N grows 25.3 → 125.7 (≈ 5x, "a weakness in the
		// algorithm").
		b.ReportMetric(rows[3].EPerN/rows[0].EPerN, "growth-refmax1to4")
	}
}

func BenchmarkTable5RefmaxBounded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RefmaxSweep(int64(i+1), 2)
		if err != nil {
			b.Fatal(err)
		}
		// Paper: 23.8 → 43.9 (≈ 1.8x, "the results become very stable").
		b.ReportMetric(rows[3].EPerN/rows[0].EPerN, "growth-refmax1to4")
	}
}

// --- Section 5.2: the big-grid experiments ---------------------------------

// benchFig4Params is the reduced-scale stand-in for the paper's
// 20000-peer, depth-10, refmax-20 grid (which cmd/pgridbench builds at
// full scale): same construction parameters, smaller community.
func benchFig4Params(seed int64) experiments.Fig4Params {
	return experiments.Fig4Params{
		N: 4000, MaxL: 8, RefMax: 10, Threshold: 0.99, Seed: seed, Concurrent: true,
	}
}

func BenchmarkFig4ReplicaDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchFig4Params(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		// Paper: mean 19.46 replicas at N/2^maxl ≈ 19.5; here the
		// analogous balance point is 4000/256 ≈ 15.6.
		b.ReportMetric(r.MeanReplicas, "mean-replicas")
		b.ReportMetric(r.EPerN, "e/N")
	}
}

func BenchmarkSearchReliability(b *testing.B) {
	r, err := experiments.Fig4(benchFig4Params(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := experiments.SearchReliability(r.Dir, 0.3, 10000, 7, 10, int64(i+2))
		// Paper: success 0.9997, 5.56 messages (refmax 20 at depth 10).
		b.ReportMetric(sr.SuccessRate, "success-rate")
		b.ReportMetric(sr.AvgMessages, "msgs/search")
	}
}

func BenchmarkFig5FindAllReplicas(b *testing.B) {
	r, err := experiments.Fig4(benchFig4Params(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dir.SampleOnline(rng, 0.3)
		curves := experiments.Fig5(r.Dir, 7, 3, 10, 600, int64(i+3))
		r.Dir.SetAllOnline(true)
		for _, c := range curves {
			// Paper (Fig. 5): breadth-first is "by far superior". With 30 %
			// online, some online replicas are unreachable (their
			// surrounding references are offline), so the curves plateau
			// below 1; compare half-coverage cost and early coverage.
			b.ReportMetric(c.Curve.XAtY(0.5), "msgs-to-50%-"+c.Strategy.String())
			b.ReportMetric(c.Curve.At(100), "coverage@100-"+c.Strategy.String())
		}
	}
}

func BenchmarkTable6UpdateQueryTradeoff(b *testing.B) {
	r, err := experiments.Fig4(benchFig4Params(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := experiments.Table6Params{
			Updates: 50, QueriesPerKey: 10, OnlineProb: 0.3, KeyLen: 7,
			MajorityMargin: 3, MajorityBudget: 64, Seed: int64(i + 4),
		}
		rows := experiments.Table6(r.Dir, p)
		for _, row := range rows {
			if row.RecBreadth != 2 || row.Repetition != 3 {
				continue
			}
			// Paper at recbreadth=2, repetition=3: repetitive
			// success 1.0 / query cost 17; non-repetitive 0.89 / 5.4.
			tag := "nonrep"
			if row.Repetitive {
				tag = "rep"
			}
			b.ReportMetric(row.SuccessRate, "success-"+tag)
			b.ReportMetric(row.QueryCost, "querycost-"+tag)
		}
	}
}

// --- Section 6 and the Section 4 model --------------------------------------

func BenchmarkSec6BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec6(experiments.Sec6Params{
			Sizes: []int{256, 1024}, RefMax: 2, FloodTTL: 64, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		small, big := rows[0], rows[1]
		// Paper's table: P-Grid O(log N) messages vs server O(N) load —
		// report the growth factors under a 4x community increase.
		b.ReportMetric(big.PGridMsgsPerQuery-small.PGridMsgsPerQuery, "pgrid-msg-delta")
		b.ReportMetric(float64(big.CentralMaxLoad)/float64(small.CentralMaxLoad), "central-load-growth")
		b.ReportMetric(big.FloodMsgsPerQuery/small.FloodMsgsPerQuery, "flood-msg-growth")
	}
}

func BenchmarkEq3ModelVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Eq3ModelVsSim(5, 500, int64(i+1))
		worst := 0.0
		for _, r := range rows {
			if d := r.Analytic - r.Measured; d > worst {
				worst = d
			}
		}
		// Eq. 3 is a lower bound; the worst shortfall should be ≈ 0.
		b.ReportMetric(worst, "worst-shortfall")
	}
}

// --- extensions (ablation benches for DESIGN.md design choices) -------------

func BenchmarkExtSkewDataAwareSplitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.SkewParams{Peers: 200, Items: 2000, MaxL: 10, MinItems: 10, Meetings: 50000, Seed: int64(i + 1)}
		rows := experiments.Skew(p)
		for _, r := range rows {
			if r.Distribution != "hotspot" {
				continue
			}
			tag := "plain"
			if r.DataAware {
				tag = "aware"
			}
			b.ReportMetric(r.LoadGini, "gini-"+tag)
		}
	}
}

func BenchmarkExtMaintenanceUnderChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		without := experiments.Maintenance(480, 4, 6, 5, 0.12, false, int64(i+1))
		with := experiments.Maintenance(480, 4, 6, 5, 0.12, true, int64(i+1))
		b.ReportMetric(without[4].Success, "success-plain")
		b.ReportMetric(with[4].Success, "success-maintained")
		b.ReportMetric(with[4].Alive, "alive-maintained")
	}
}

func BenchmarkExtJoinGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.JoinGrowth(256, 3, 64, 5, 4, int64(i+1))
		b.ReportMetric(rows[0].MeanMeetings, "meetings/join-first")
		b.ReportMetric(rows[2].MeanMeetings, "meetings/join-last")
	}
}

// --- simulator engine throughput --------------------------------------------

// The construction engines are the repository's hottest code path (every
// experiment is built from meetings); these benches report raw meetings/sec
// at a paper-adjacent scale so engine regressions are visible in one number.
// BENCH_construction.json records the same metric from cmd/pgridbench.

func benchEngineOptions(n int, seed int64) sim.Options {
	return sim.Options{
		N:      n,
		Config: core.Config{MaxL: 8, RefMax: 5, RecMax: 2, RecFanout: 2},
		Seed:   seed,
	}
}

func BenchmarkBuildMeetingsPerSec(b *testing.B) {
	var meetings int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := sim.Build(benchEngineOptions(5000, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("did not converge: %+v", res)
		}
		meetings += res.Meetings
	}
	b.ReportMetric(float64(meetings)/time.Since(start).Seconds(), "meetings/sec")
}

func BenchmarkBuildConcurrentMeetingsPerSec(b *testing.B) {
	var meetings int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := sim.BuildConcurrent(benchEngineOptions(5000, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("did not converge: %+v", res)
		}
		meetings += res.Meetings
	}
	b.ReportMetric(float64(meetings)/time.Since(start).Seconds(), "meetings/sec")
}

// --- per-operation micro-benchmarks -----------------------------------------

func benchGrid(b *testing.B, n, depth, refmax int) *directory.Directory {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return trie.BuildIdeal(n, depth, refmax, rng)
}

func BenchmarkQueryOp(b *testing.B) {
	d := benchGrid(b, 4096, 8, 5)
	rng := rand.New(rand.NewSource(2))
	keys := make([]bitpath.Path, 1024)
	for i := range keys {
		keys[i] = bitpath.Random(rng, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Query(d, d.All()[i%4096], keys[i%1024], rng)
		if !res.Found {
			b.Fatal("query failed on ideal grid")
		}
	}
}

func BenchmarkExchangeOp(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := directory.New(1024)
	cfg := core.Config{MaxL: 8, RefMax: 5, RecMax: 2, RecFanout: 2}
	var m core.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1, a2 := d.RandomPair(rng)
		core.Exchange(d, cfg, &m, a1, a2, rng)
	}
}

func BenchmarkUpdateOp(b *testing.B) {
	d := benchGrid(b, 2048, 7, 5)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := store.Entry{Key: bitpath.Random(rng, 6), Name: "x", Holder: 1, Version: uint64(i + 1)}
		core.Update(d, e, 2, 1, rng)
	}
}

func BenchmarkMajorityReadOp(b *testing.B) {
	d := benchGrid(b, 2048, 7, 5)
	rng := rand.New(rand.NewSource(5))
	key := bitpath.Random(rng, 7)
	core.PopulateIndex(d, store.Entry{Key: key, Name: "x", Holder: 1, Version: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.MajorityRead(d, key, "x", core.MajorityOptions{Margin: 3}, rng)
		if !res.Found {
			b.Fatal("majority read failed")
		}
	}
}

func BenchmarkReplicaSearchOp(b *testing.B) {
	d := benchGrid(b, 2048, 7, 5)
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ReplicaSearch(d, d.RandomPeer(rng), bitpath.Random(rng, 6), 2, rng)
	}
}

func BenchmarkPublicLookup(b *testing.B) {
	g := BuildIdeal(2048, 7, 5, 7)
	key := HashKey("bench.mp3", 7)
	if _, err := g.Publish(Entry{Key: key, Name: "bench.mp3", Holder: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Lookup(key, "bench.mp3"); err != nil {
			b.Fatal(err)
		}
	}
}
