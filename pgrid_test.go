package pgrid

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	return BuildIdeal(256, 4, 8, 1)
}

func TestBuildConvergesSmall(t *testing.T) {
	g, err := Build(Options{
		Peers: 120, MaxPathLen: 4, RefMax: 4, RecMax: 2, RecFanout: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.AvgPathLen < 0.99*4 {
		t.Errorf("avg path length = %v", s.AvgPathLen)
	}
	if s.Peers != 120 || s.Online != 120 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBuildConcurrentOption(t *testing.T) {
	g, err := Build(Options{
		Peers: 300, MaxPathLen: 4, RefMax: 4, RecMax: 2, RecFanout: 2, Seed: 8, Concurrent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	if _, err := Build(Options{Peers: 1, MaxPathLen: 2, RefMax: 1}); err == nil {
		t.Error("Peers=1 accepted")
	}
	if _, err := Build(Options{Peers: 10, MaxPathLen: 0, RefMax: 1}); err == nil {
		t.Error("MaxPathLen=0 accepted")
	}
}

func TestDefaultOptionsScaleDepthWithN(t *testing.T) {
	small := DefaultOptions(64)
	big := DefaultOptions(65536)
	if small.MaxPathLen >= big.MaxPathLen {
		t.Errorf("depths %d !< %d", small.MaxPathLen, big.MaxPathLen)
	}
	if small.RecMax != 2 || small.RecFanout != 2 {
		t.Errorf("defaults = %+v", small)
	}
	// Default depth keeps ≥ 8 replicas per leaf.
	if leaves := 1 << uint(big.MaxPathLen); 65536/leaves < 8 {
		t.Errorf("depth %d leaves too few replicas", big.MaxPathLen)
	}
}

func TestPublishLookupRoundTrip(t *testing.T) {
	g := testGrid(t)
	key := HashKey("song.mp3", 4)
	if _, err := g.Publish(Entry{Key: key, Name: "song.mp3", Holder: 42}); err != nil {
		t.Fatal(err)
	}
	e, cost, err := g.Lookup(key, "song.mp3")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "song.mp3" || e.Holder != 42 || e.Version != 1 {
		t.Errorf("entry = %+v", e)
	}
	if cost.Messages > 4 {
		t.Errorf("lookup cost %d messages on a depth-4 grid", cost.Messages)
	}
}

func TestLookupMissing(t *testing.T) {
	g := testGrid(t)
	_, _, err := g.Lookup(HashKey("ghost", 4), "ghost")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadKeysRejectedEverywhere(t *testing.T) {
	g := testGrid(t)
	bad := "01x1"
	if _, err := g.Publish(Entry{Key: bad, Name: "n"}); !errors.Is(err, ErrBadKey) {
		t.Errorf("Publish err = %v", err)
	}
	if _, err := g.Search(bad); !errors.Is(err, ErrBadKey) {
		t.Errorf("Search err = %v", err)
	}
	if _, _, err := g.Lookup(bad, "n"); !errors.Is(err, ErrBadKey) {
		t.Errorf("Lookup err = %v", err)
	}
	if _, _, err := g.MajorityLookup(bad, "n", 3); !errors.Is(err, ErrBadKey) {
		t.Errorf("MajorityLookup err = %v", err)
	}
	if _, _, err := g.PrefixSearch(bad); !errors.Is(err, ErrBadKey) {
		t.Errorf("PrefixSearch err = %v", err)
	}
	if _, err := g.Update(Entry{Key: bad, Name: "n"}, 2, 1); !errors.Is(err, ErrBadKey) {
		t.Errorf("Update err = %v", err)
	}
	if err := g.SeedIndex(Entry{Key: bad, Name: "n"}); !errors.Is(err, ErrBadKey) {
		t.Errorf("SeedIndex err = %v", err)
	}
}

func TestSearchFindsResponsiblePeer(t *testing.T) {
	g := testGrid(t)
	res, err := g.Search("0110")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix("0110", res.Path) && !strings.HasPrefix(res.Path, "0110") {
		t.Errorf("responsible path %q not comparable with key", res.Path)
	}
}

func TestUpdateAndMajorityLookup(t *testing.T) {
	g := testGrid(t)
	key := HashKey("doc", 4)
	if err := g.SeedIndex(Entry{Key: key, Name: "doc", Holder: 1, Version: 1}); err != nil {
		t.Fatal(err)
	}
	cost, err := g.Update(Entry{Key: key, Name: "doc", Holder: 2, Version: 2}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Replicas == 0 {
		t.Fatal("update reached no replicas")
	}
	e, _, err := g.MajorityLookup(key, "doc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 2 {
		t.Errorf("majority read returned version %d", e.Version)
	}
}

func TestVersionZeroMeansOne(t *testing.T) {
	g := testGrid(t)
	key := HashKey("v0", 4)
	if _, err := g.Publish(Entry{Key: key, Name: "v0", Holder: 1}); err != nil {
		t.Fatal(err)
	}
	e, _, err := g.Lookup(key, "v0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 1 {
		t.Errorf("version = %d", e.Version)
	}
}

func TestPrefixSearchOverTextKeys(t *testing.T) {
	g := BuildIdeal(512, 5, 8, 2)
	words := []string{"alpha", "alpine", "beta", "gamma"}
	for i, w := range words {
		if err := g.SeedIndex(Entry{Key: TextKey(w, 24), Name: w, Holder: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// All keys starting with "al" — TextKey("al", 16) is the prefix.
	got, _, err := g.PrefixSearch(TextKey("al", 16))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range got {
		names[e.Name] = true
	}
	if !names["alpha"] || !names["alpine"] || names["beta"] || names["gamma"] {
		t.Errorf("prefix search returned %v", names)
	}
}

func TestPrefixSearchDedupesToFreshest(t *testing.T) {
	g := testGrid(t)
	key := HashKey("dup", 4)
	if err := g.SeedIndex(Entry{Key: key, Name: "dup", Holder: 1, Version: 1}); err != nil {
		t.Fatal(err)
	}
	// A deeper update that only reached some replicas: PrefixSearch must
	// surface the freshest version it saw.
	if _, err := g.Update(Entry{Key: key, Name: "dup", Holder: 2, Version: 5}, 2, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := g.PrefixSearch(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0].Version != 5 || got[0].Holder != 2 {
		t.Errorf("entry = %+v, want freshest", got[0])
	}
}

func TestSetOnlineFraction(t *testing.T) {
	g := testGrid(t)
	g.SetOnlineFraction(0.3)
	s := g.Stats()
	if s.Online == 0 || s.Online == s.Peers {
		t.Errorf("online = %d of %d", s.Online, s.Peers)
	}
	g.SetOnlineFraction(1)
	if got := g.Stats().Online; got != g.N() {
		t.Errorf("online after restore = %d", got)
	}
}

func TestChurnStep(t *testing.T) {
	g := testGrid(t)
	for i := 0; i < 50; i++ {
		g.ChurnStep(0.5, 10)
	}
	s := g.Stats()
	if s.Online == 0 || s.Online == s.Peers {
		t.Errorf("churn left online = %d of %d", s.Online, s.Peers)
	}
}

func TestStatsShape(t *testing.T) {
	g := testGrid(t)
	s := g.Stats()
	if s.Peers != 256 || s.MaxPathLen != 4 || s.AvgPathLen != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.ReplicaMean < 15 || s.ReplicaMean > 17 {
		t.Errorf("replica mean = %v, want 16", s.ReplicaMean)
	}
	if err := g.SeedIndex(Entry{Key: "0000", Name: "x", Holder: 1}); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().IndexEntries; got == 0 {
		t.Error("IndexEntries not counted")
	}
}

func TestUnreachableWhenAllOffline(t *testing.T) {
	g := testGrid(t)
	g.SetOnlineFraction(0)
	if _, err := g.Search("0101"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Search err = %v", err)
	}
	if _, _, err := g.Lookup("0101", "x"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Lookup err = %v", err)
	}
	if _, err := g.Publish(Entry{Key: "0101", Name: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("Publish err = %v", err)
	}
	if _, _, err := g.PrefixSearch("01"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("PrefixSearch err = %v", err)
	}
}

func TestGridMethodsAreConcurrencySafe(t *testing.T) {
	g := testGrid(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := FileNameForTest(w, i)
				key := HashKey(name, 4)
				g.Publish(Entry{Key: key, Name: name, Holder: w})
				g.Lookup(key, name)
				g.Search(key)
				g.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

// FileNameForTest fabricates a distinct name per (worker, iteration).
func FileNameForTest(w, i int) string {
	return "f-" + string(rune('a'+w)) + "-" + string(rune('a'+i%26)) + ".dat"
}

func TestHashKeyAndTextKeyShapes(t *testing.T) {
	if len(HashKey("x", 10)) != 10 {
		t.Error("HashKey length wrong")
	}
	if len(TextKey("x", 12)) != 12 {
		t.Error("TextKey length wrong")
	}
	for _, c := range HashKey("y", 20) + TextKey("y", 20) {
		if c != '0' && c != '1' {
			t.Fatalf("non-binary character %q", c)
		}
	}
}
