package pgrid

import (
	"fmt"

	"pgrid/internal/bitpath"
	"pgrid/internal/core"
)

// This file completes the Grid API with the operational features built on
// the paper's future-work extensions: dynamic membership, reference
// maintenance under churn, route inspection, and key-level enumeration.

// JoinStats reports the integration of one newcomer.
type JoinStats struct {
	// Peer is the newcomer's id.
	Peer int
	// Meetings is how many bootstrap meetings it initiated.
	Meetings int
	// Depth is its final path depth.
	Depth int
	// Settled reports whether it reached the community's configured depth.
	Settled bool
}

// Join grows the community by one fresh peer, integrating it through
// ordinary gossip with random online peers (no special join protocol).
// Typical cost is O(depth) meetings regardless of community size.
func (g *Grid) Join() (JoinStats, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.dir.AddPeer()
	var m core.Metrics
	res := core.Join(g.dir, g.cfg, &m, p, g.cfg.MaxL, 100*g.cfg.MaxL, g.rng)
	st := JoinStats{Peer: int(p.Addr()), Meetings: res.Meetings, Depth: res.Depth, Settled: res.Settled}
	if !res.Settled {
		return st, fmt.Errorf("pgrid: join: newcomer reached depth %d of %d", res.Depth, g.cfg.MaxL)
	}
	return st, nil
}

// MaintainStats reports one community-wide maintenance round.
type MaintainStats struct {
	// Probed, Dropped, Added count reference probes, removals of dead
	// references, and fresh references learned.
	Probed, Dropped, Added int
	// Messages is the total maintenance traffic.
	Messages int
	// AliveFraction is the post-round fraction of references that pass a
	// validity probe.
	AliveFraction float64
}

// Maintain runs one reference-maintenance round on every online peer:
// probe references, drop the dead, refill levels from live references'
// buddies. Run it periodically under churn to keep routing healthy.
func (g *Grid) Maintain() MaintainStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	res := core.MaintainAll(g.dir, g.cfg, core.MaintainOptions{DropOffline: true, Fetch: 3}, g.rng)
	health := core.MeasureRefHealth(g.dir, g.cfg)
	return MaintainStats{
		Probed: res.Probed, Dropped: res.Dropped, Added: res.Added,
		Messages: res.Messages, AliveFraction: health.AliveFraction,
	}
}

// WarmStats reports a routing-table warming pass.
type WarmStats struct {
	// Learned is the number of references added across the community.
	Learned int
	// Messages is the query traffic spent.
	Messages int
}

// Warm thickens routing tables from query traffic: it runs `queries`
// traced searches for random keys and lets every peer on a successful
// route learn the responsible peer as a reference where valid (never
// evicting existing references, never exceeding refmax). Useful after
// construction with a tight reference budget, or after maintenance has
// dropped dead references.
func (g *Grid) Warm(queries int) WarmStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	learned, msgs := core.Warm(g.dir, g.cfg, queries, g.cfg.MaxL, g.rng)
	return WarmStats{Learned: learned, Messages: msgs}
}

// RouteHop is one step of a traced search.
type RouteHop struct {
	Peer        int
	Path        string
	Matched     bool
	Backtracked bool
}

// Trace routes a search for key like Search but returns the full route,
// including backtracking around offline peers — the debugging view of the
// routing fabric.
func (g *Grid) Trace(key string) ([]RouteHop, SearchResult, error) {
	k, err := bitpath.Parse(key)
	if err != nil {
		return nil, SearchResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	start := g.dir.RandomOnlinePeer(g.rng)
	if start == nil {
		return nil, SearchResult{}, ErrUnreachable
	}
	tr := core.QueryTraced(g.dir, start, k, g.rng)
	hops := make([]RouteHop, len(tr.Hops))
	for i, h := range tr.Hops {
		hops[i] = RouteHop{Peer: int(h.Peer), Path: string(h.Path), Matched: h.Matched, Backtracked: h.Backtracked}
	}
	res := SearchResult{Cost: Cost{Messages: tr.Result.Messages}}
	if !tr.Result.Found {
		return hops, res, ErrUnreachable
	}
	res.Peer = int(tr.Result.Peer)
	res.Path = string(g.dir.Peer(tr.Result.Peer).Path())
	return hops, res, nil
}

// RangeSearch returns every known entry whose key lies in the inclusive
// range [lo, hi] (both the same length). The range is decomposed into at
// most 2·len canonical prefixes — this is where the ordered, trie-shaped
// key space pays off over hash partitioning — and each prefix is resolved
// with a breadth-first fan-out over its covering replicas. Entries are
// merged freshest-version-first per name.
func (g *Grid) RangeSearch(lo, hi string) ([]Entry, Cost, error) {
	loP, err := bitpath.Parse(lo)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, lo)
	}
	hiP, err := bitpath.Parse(hi)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, hi)
	}
	prefixes, err := bitpath.CoverRange(loP, hiP)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("pgrid: range: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()

	var cost Cost
	best := make(map[string]Entry)
	resolvedAny := false
	for _, prefix := range prefixes {
		start := g.dir.RandomOnlinePeer(g.rng)
		if start == nil {
			return nil, cost, ErrUnreachable
		}
		res := core.ReplicaSearch(g.dir, start, prefix, g.cfg.RefMax, g.rng)
		cost.Messages += res.Messages
		cost.Replicas += len(res.Found)
		if len(res.Found) > 0 {
			resolvedAny = true
		}
		for _, a := range res.Found {
			for _, e := range g.dir.Peer(a).Store().PrefixScan(prefix) {
				// A covering peer's scan can include keys shorter than the
				// range bounds (region keys); only same-length keys are
				// range members.
				if e.Key.Len() != loP.Len() || !bitpath.RangeContains(loP, hiP, e.Key) {
					continue
				}
				if old, ok := best[e.Name]; !ok || e.Version > old.Version {
					best[e.Name] = external(e)
				}
			}
		}
	}
	if !resolvedAny {
		return nil, cost, ErrUnreachable
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sortEntries(out)
	return out, cost, nil
}

// LookupAll returns every entry indexed under exactly key, merged across
// one responsible replica (hash keys routinely collide across distinct
// names; this enumerates them).
func (g *Grid) LookupAll(key string) ([]Entry, Cost, error) {
	k, err := bitpath.Parse(key)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	start := g.dir.RandomOnlinePeer(g.rng)
	if start == nil {
		return nil, Cost{}, ErrUnreachable
	}
	res := core.Query(g.dir, start, k, g.rng)
	cost := Cost{Messages: res.Messages}
	if !res.Found {
		return nil, cost, ErrUnreachable
	}
	var out []Entry
	for _, e := range g.dir.Peer(res.Peer).Store().Lookup(k) {
		out = append(out, external(e))
	}
	if len(out) == 0 {
		return nil, cost, ErrNotFound
	}
	return out, cost, nil
}
